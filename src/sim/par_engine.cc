#include "sim/par_engine.hh"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

#include "obs/sampler.hh"
#include "sim/check.hh"
#include "sim/machine_impl.hh"

namespace dss {
namespace sim {

namespace {

constexpr std::uint64_t
bit(ProcId p)
{
    return std::uint64_t{1} << p;
}

} // namespace

/**
 * Phase-A port: shared-state reads go through the processor's overlay,
 * shared-state writes are parked in its mailbox. Own-node state is
 * handled inside the Machine pipelines and never reaches the port.
 */
struct ParEngine::ParPort
{
    ParEngine &eng;
    ProcCtx &ctx;
    ProcId proc;

    Directory::Entry
    entryView(Addr line)
    {
        return eng.portEntryView(ctx, line);
    }

    Cycles
    controller(ProcId home, Cycles arrival)
    {
        return eng.portController(ctx, proc, home, arrival);
    }

    void
    backgroundOccupy(ProcId home, Cycles arrival)
    {
        eng.portBackgroundOccupy(ctx, proc, home, arrival);
    }

    void
    applyReadFill(ProcId, Addr line)
    {
        eng.portApplyReadFill(ctx, proc, line);
    }

    void
    applyStore(ProcId, Addr line, WordMask wmask)
    {
        eng.portApplyStore(ctx, proc, line, wmask);
    }

    void
    applyDrop(ProcId, Addr line)
    {
        eng.portApplyDrop(ctx, proc, line);
    }

    void
    applyPrefetchShare(ProcId, Addr line)
    {
        eng.portApplyPrefetchShare(ctx, proc, line);
    }

    void
    span(ProcId, obs::SpanKind k, Cycles start, Cycles end)
    {
        ctx.spans.push_back({k, start, end});
    }
};

ParEngine::ParEngine(Machine &m, const EngineConfig &cfg)
    : m_(m), cfg_(cfg)
{
    const unsigned np = m_.cfg_.nprocs;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsigned t = cfg_.threads ? cfg_.threads : std::min(np, hw);
    nworkers_ = std::clamp(t, 1u, np);
    ctxs_.resize(np);
    for (ProcCtx &c : ctxs_)
        c.ctrlFree.assign(np, 0);
    if (nworkers_ > 1)
        startWorkers(nworkers_);
}

ParEngine::~ParEngine()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }
}

void
ParEngine::park(ProcCtx &ctx, ParkedOp op)
{
    op.seq = ctx.seq++;
    ctx.mailbox.push_back(op);
}

Directory::Entry
ParEngine::portEntryView(ProcCtx &ctx, Addr line) const
{
    const Addr la = m_.dir_.lineAddrOf(line);
    auto it = ctx.dirDelta.find(la);
    if (it != ctx.dirDelta.end())
        return it->second;
    const Directory::Entry *e = m_.dir_.peek(la);
    return e ? *e : Directory::Entry{};
}

Cycles
ParEngine::portController(ProcCtx &ctx, ProcId p, ProcId home,
                          Cycles arrival)
{
    const Cycles free =
        std::max(m_.dir_.controllerFreeAt(home), ctx.ctrlFree[home]);
    const Cycles delay = free > arrival ? free - arrival : 0;
    ctx.ctrlFree[home] = std::max(free, arrival) + m_.dir_.occupancyCycles();
    park(ctx, {ParkedOp::Kind::Occupy, p, DataClass::Priv,
               static_cast<Addr>(home), m_.runs_[p].clock, arrival, delay,
               0});
    return delay;
}

void
ParEngine::portBackgroundOccupy(ProcCtx &ctx, ProcId p, ProcId home,
                                Cycles arrival)
{
    // The sequential engine charges the (discarded) queuing delay of a
    // background writeback to the home's contention counters; compute the
    // same delay against the overlay so phase B can replay the charge.
    portController(ctx, p, home, arrival);
}

void
ParEngine::portApplyReadFill(ProcCtx &ctx, ProcId p, Addr line)
{
    const Addr la = m_.dir_.lineAddrOf(line);
    Directory::Entry e = portEntryView(ctx, la);
    if (e.state == Directory::State::Dirty && e.owner != p) {
        e.state = Directory::State::Shared;
        e.sharers = bit(e.owner) | bit(p);
    } else {
        if (e.state == Directory::State::Uncached)
            e.state = Directory::State::Shared;
        e.sharers |= bit(p);
    }
    ctx.dirDelta[la] = e;
    park(ctx, {ParkedOp::Kind::ReadFill, p, DataClass::Priv, la,
               m_.runs_[p].clock, 0, 0, 0});
}

void
ParEngine::portApplyStore(ProcCtx &ctx, ProcId p, Addr line, WordMask wmask)
{
    const Addr la = m_.dir_.lineAddrOf(line);
    Directory::Entry e;
    e.state = Directory::State::Dirty;
    e.owner = p;
    e.sharers = bit(p);
    ctx.dirDelta[la] = e;
    park(ctx, {ParkedOp::Kind::StoreDir, p, DataClass::Priv, la,
               m_.runs_[p].clock, 0, 0, 0, wmask});
}

void
ParEngine::portApplyDrop(ProcCtx &ctx, ProcId p, Addr line)
{
    const Addr la = m_.dir_.lineAddrOf(line);
    Directory::Entry e = portEntryView(ctx, la);
    if (e.state == Directory::State::Dirty && e.owner == p) {
        e.state = Directory::State::Uncached;
        e.sharers = 0;
    } else {
        e.sharers &= ~bit(p);
        if (e.sharers == 0 && e.state == Directory::State::Shared)
            e.state = Directory::State::Uncached;
    }
    ctx.dirDelta[la] = e;
    park(ctx, {ParkedOp::Kind::Drop, p, DataClass::Priv, la,
               m_.runs_[p].clock, 0, 0, 0});
}

void
ParEngine::portApplyPrefetchShare(ProcCtx &ctx, ProcId p, Addr line)
{
    const Addr la = m_.dir_.lineAddrOf(line);
    Directory::Entry e = portEntryView(ctx, la);
    if (!(e.state == Directory::State::Dirty && e.owner != p)) {
        if (e.state == Directory::State::Uncached)
            e.state = Directory::State::Shared;
        e.sharers |= bit(p);
        ctx.dirDelta[la] = e;
    }
    park(ctx, {ParkedOp::Kind::PrefetchShare, p, DataClass::Priv, la,
               m_.runs_[p].clock, 0, 0, 0});
}

void
ParEngine::replayWindow(ProcId p, Cycles window_end)
{
    Machine::ProcRun &r = m_.runs_[p];
    ProcCtx &ctx = ctxs_[p];
    // The previous barrier applied this processor's parked mutations to
    // the live state; restart the overlays from the live view.
    ctx.dirDelta.clear();
    std::fill(ctx.ctrlFree.begin(), ctx.ctrlFree.end(), 0);
    ParPort port{*this, ctx, p};
    while (!r.done() && !r.blocked && r.clock < window_end) {
        const TraceEntry &e = (*r.entries)[r.pos];
        switch (e.op) {
          case Op::Read:
            m_.doReadT(port, p, e);
            ++r.pos;
            break;
          case Op::Write:
            m_.doWriteT(port, p, e);
            ++r.pos;
            break;
          case Op::Busy:
            m_.doBusyT(port, p, e);
            ++r.pos;
            break;
          case Op::LockAcq:
            // The outcome depends on the other processors: suspend until
            // the barrier resolves it in deterministic order.
            park(ctx, {ParkedOp::Kind::LockAcq, p, e.cls, e.addr, r.clock,
                       0, 0, 0});
            return;
          case Op::LockRel:
            // The release store drains like any store; the hand-off and
            // wake-ups are ordered at the barrier. A LockPreempt fault
            // stretches the hold first, keyed on this trace position —
            // identical to the sequential engine's doLockRel.
            m_.preemptReleaseT(port, p);
            m_.doWriteT(port, p, e);
            park(ctx, {ParkedOp::Kind::LockRel, p, e.cls, e.addr, r.clock,
                       0, 0, 0});
            ++r.pos;
            break;
        }
    }
}

void
ParEngine::applyBarrier()
{
    std::vector<ParkedOp> ops;
    std::size_t total = 0;
    for (const ProcCtx &c : ctxs_)
        total += c.mailbox.size();
    ops.reserve(total);
    for (ProcCtx &c : ctxs_) {
        ops.insert(ops.end(), c.mailbox.begin(), c.mailbox.end());
        c.mailbox.clear();
    }
    std::sort(ops.begin(), ops.end(),
              [](const ParkedOp &a, const ParkedOp &b) {
                  return std::tie(a.clock, a.proc, a.seq) <
                         std::tie(b.clock, b.proc, b.seq);
              });

    // Lock continuations generated while draining: a completed test&set
    // (acqPending) or a woken spinner re-executes its LockAcq at its new
    // clock, interleaved with the remaining parked operations.
    struct StepEv
    {
        Cycles clock;
        ProcId proc;
    };
    auto stepLater = [](const StepEv &a, const StepEv &b) {
        return std::tie(a.clock, a.proc) > std::tie(b.clock, b.proc);
    };
    std::priority_queue<StepEv, std::vector<StepEv>, decltype(stepLater)>
        steps(stepLater);

    // The lines whose shared state this barrier touches. They are
    // reconciled against the caches once the barrier has fully drained
    // (replayed invalidations can land after the eager phase-A fills
    // they target), and with --check attached that is also the first
    // point the invariants are supposed to hold again.
    std::vector<Addr> touched;
    const bool chk = m_.checker_ != nullptr;

    auto stepLock = [&](ProcId p) {
        Machine::ProcRun &r = m_.runs_[p];
        assert(!r.done() && (*r.entries)[r.pos].op == Op::LockAcq);
        touched.push_back(m_.dir_.lineAddrOf((*r.entries)[r.pos].addr));
        m_.doLockAcq(p, (*r.entries)[r.pos]);
        if (r.acqPending)
            steps.push({r.clock, p});
    };

    std::size_t i = 0;
    while (i < ops.size() || !steps.empty()) {
        bool take_op;
        if (steps.empty()) {
            take_op = true;
        } else if (i >= ops.size()) {
            take_op = false;
        } else {
            // Parked work wins clock/proc ties: a processor's parked ops
            // always precede its own continuation, and the rule is the
            // same for every thread count.
            take_op = std::tie(ops[i].clock, ops[i].proc) <=
                      std::tie(steps.top().clock, steps.top().proc);
        }
        if (take_op) {
            const ParkedOp &o = ops[i++];
            if (o.kind != ParkedOp::Kind::Occupy)
                touched.push_back(m_.dir_.lineAddrOf(o.addr));
            switch (o.kind) {
              case ParkedOp::Kind::ReadFill:
                m_.applyReadFillDir(o.proc, o.addr);
                break;
              case ParkedOp::Kind::StoreDir:
                m_.applyStoreDir(o.proc, o.addr, o.wmask);
                break;
              case ParkedOp::Kind::Drop:
                m_.dropFromDirectory(o.proc, o.addr);
                break;
              case ParkedOp::Kind::PrefetchShare:
                m_.applyPrefetchShareDir(o.proc, o.addr);
                break;
              case ParkedOp::Kind::Occupy:
                m_.dir_.occupy(static_cast<ProcId>(o.addr), o.arrival,
                               o.delay);
                break;
              case ParkedOp::Kind::LockAcq:
                stepLock(o.proc);
                break;
              case ParkedOp::Kind::LockRel: {
                const ProcId woken = m_.releaseLock(
                    o.proc, TraceEntry::lockRel(o.addr, o.cls), o.clock);
                if (woken != LockTable::kNoWaiter)
                    steps.push({m_.runs_[woken].clock, woken});
                break;
              }
            }
        } else {
            const StepEv s = steps.top();
            steps.pop();
            stepLock(s.proc);
        }
    }

    // Timeline spans parked in phase A, flushed in processor order.
    for (ProcId p = 0; p < ctxs_.size(); ++p) {
        for (const SpanRec &s : ctxs_[p].spans)
            m_.span(p, s.kind, s.start, s.end);
        ctxs_[p].spans.clear();
    }

    if (!touched.empty()) {
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        for (Addr line : touched)
            m_.reconcileDirAfterBarrier(line);
    }
    if (chk && (!touched.empty() || !ops.empty()))
        m_.checker_->onBarrier(m_, touched);
}

void
ParEngine::startWorkers(unsigned n)
{
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

void
ParEngine::workerLoop(unsigned idx)
{
    std::uint64_t seen = 0;
    for (;;) {
        Cycles window_end;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] { return stop_ || gen_ != seen; });
            if (stop_)
                return;
            seen = gen_;
            window_end = jobWindowEnd_;
        }
        for (std::size_t i = idx; i < jobProcs_.size(); i += nworkers_)
            replayWindow(jobProcs_[i], window_end);
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--running_ == 0)
                doneCv_.notify_one();
        }
    }
}

void
ParEngine::phaseA(Cycles window_end)
{
    if (workers_.empty() || jobProcs_.size() == 1) {
        for (ProcId p : jobProcs_)
            replayWindow(p, window_end);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        jobWindowEnd_ = window_end;
        running_ = nworkers_;
        ++gen_;
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lk(mu_);
    doneCv_.wait(lk, [&] { return running_ == 0; });
}

void
ParEngine::run(std::size_t nrun)
{
    const unsigned np = m_.cfg_.nprocs;
    const Cycles window = cfg_.windowCycles ? cfg_.windowCycles : 1;
    Cycles window_end = window;
    for (;;) {
        bool any_alive = false;
        bool any_runnable = false;
        Cycles min_clock = 0;
        for (ProcId p = 0; p < np; ++p) {
            const Machine::ProcRun &r = m_.runs_[p];
            if (r.done())
                continue;
            any_alive = true;
            if (r.blocked)
                continue;
            if (!any_runnable || r.clock < min_clock)
                min_clock = r.clock;
            any_runnable = true;
        }
        if (!any_alive)
            break;
        if (!any_runnable)
            m_.throwDeadlock("par");

        // Skip empty windows so idle stretches (one long Busy op) don't
        // spin the barrier.
        while (window_end <= min_clock)
            window_end += window;

        // Epoch sampling at window granularity: min_clock is the minimum
        // runnable clock, which only grows window to window, so samples
        // are taken in monotonic order exactly like the sequential
        // engine's (the sampler tolerates several boundaries at once).
        if (m_.sampler_ && m_.sampler_->due(min_clock))
            m_.sampler_->sample(min_clock, m_.statsSnapshot(nrun));

        for (;;) {
            jobProcs_.clear();
            for (ProcId p = 0; p < np; ++p) {
                const Machine::ProcRun &r = m_.runs_[p];
                if (!r.done() && !r.blocked && r.clock < window_end)
                    jobProcs_.push_back(p);
            }
            if (jobProcs_.empty())
                break;
            phaseA(window_end);
            applyBarrier();
        }
        window_end += window;
    }
}

} // namespace sim
} // namespace dss
