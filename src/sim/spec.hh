/**
 * @file
 * Named machine specifications: presets plus JSON machine-spec files.
 *
 * A MachineSpec is a MachineConfig with a name — the unit the harness's
 * `--machine=<preset|file.json>` flag selects. Three presets ship:
 *
 *  - `paper1997`  the paper's baseline CC-NUMA machine, bit-identical to
 *                 MachineConfig::baseline() (the default);
 *  - `modern`     a three-level chain — 32 KB/64 B/8-way L1, 256 KB 8-way
 *                 L2, 8 MB 16-way shared LLC — over the same CC-NUMA
 *                 interconnect, for LLC-era replays of the paper's
 *                 questions;
 *  - `scaled64`   the paper's caches on 64 processors (the directory's
 *                 full sharer-mask width), for scaling studies.
 *
 * Anything else is a path to a JSON file in the same schema that
 * obs-layer reports embed (toJson in spec.cc writes it, loadSpec parses
 * it back — a lossless round trip). Parsing is strict: unknown keys are
 * rejected with a structured SimError so a typo'd "asoc" cannot silently
 * fall back to a default, and every loaded spec passes the full
 * validateMachineConfig gauntlet before a Machine is ever built from it.
 */

#ifndef DSS_SIM_SPEC_HH
#define DSS_SIM_SPEC_HH

#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/machine.hh"

namespace dss {
namespace sim {

/** A named, validated machine description. */
struct MachineSpec
{
    std::string name; ///< preset name, or the path the spec was read from
    MachineConfig config;
};

/** Names of the built-in presets, in listing order. */
std::vector<std::string> machinePresetNames();

/** Build one preset by name; throws SimError for unknown names (the
 * message lists the valid ones). */
MachineSpec machinePreset(const std::string &name);

/**
 * Resolve `--machine`'s argument: a preset name, or — when it ends in
 * ".json" or contains a path separator — a JSON machine-spec file.
 * Throws SimError on unknown presets, unreadable files, malformed JSON,
 * unknown keys, and any validateMachineConfig failure.
 */
MachineSpec loadSpec(const std::string &nameOrPath);

/** Parse a spec from already-loaded JSON; @p name is recorded verbatim.
 * Strict: unknown keys throw SimError. */
MachineSpec specFromJson(const obs::Json &j, const std::string &name);

/** Serialize the full spec (name, level chain, latencies, knobs) in the
 * schema specFromJson accepts: toJson/specFromJson round-trip losslessly. */
obs::Json toJson(const MachineSpec &spec);

} // namespace sim
} // namespace dss

#endif // DSS_SIM_SPEC_HH
