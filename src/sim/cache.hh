/**
 * @file
 * Set-associative cache with LRU replacement and cold/conflict/coherence
 * miss classification.
 *
 * The classification follows the taxonomy the paper uses in Figure 7:
 *  - Cold: the line was never before present in this cache.
 *  - Cohe: the line was present and its most recent removal was a coherence
 *          invalidation caused by another processor's write.
 *  - Conf: everything else (capacity is folded into conflict, as in the
 *          paper's three-way split).
 */

#ifndef DSS_SIM_CACHE_HH
#define DSS_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/addr.hh"

namespace dss {
namespace obs {
class Registry;
} // namespace obs

namespace sim {

/** Read-miss classification (paper Figure 7). */
enum class MissType : std::uint8_t { Cold, Conf, Cohe, NumTypes };

constexpr std::size_t kNumMissTypes =
    static_cast<std::size_t>(MissType::NumTypes);

constexpr std::string_view
missTypeName(MissType t)
{
    switch (t) {
      case MissType::Cold: return "Cold";
      case MissType::Conf: return "Conf";
      case MissType::Cohe: return "Cohe";
      default: return "?";
    }
}

/** Geometry of one cache level. */
struct CacheConfig
{
    std::size_t sizeBytes = 4 * 1024;
    std::size_t lineBytes = 32;
    std::size_t assoc = 1;
};

/**
 * One cache array. Timing lives in Machine; this class models only
 * presence, replacement, dirtiness and miss classification.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /** Result of a lookup that missed. */
    struct Victim
    {
        bool valid = false; ///< a line was evicted
        bool dirty = false; ///< ... and it was dirty (needs writeback)
        Addr lineAddr = 0;  ///< ... at this line address
    };

    /** Line-aligned address of @p addr. */
    Addr lineAddrOf(Addr addr) const { return addr & ~(lineBytes_ - 1); }

    /** True if the line holding @p addr is present. */
    bool contains(Addr addr) const { return find(addr) != nullptr; }

    /** True if the line holding @p addr is present and dirty. */
    bool isDirty(Addr addr) const;

    /**
     * Look up @p addr; on hit, refresh LRU and optionally set dirty.
     * @return true on hit.
     *
     * Defined inline: this is the simulator's hottest call (every traced
     * reference goes through the L1, most of them hits).
     */
    bool
    access(Addr addr, bool set_dirty = false)
    {
        ++ctrs_.lookups;
        Line *l = find(addr);
        if (!l)
            return false;
        ++ctrs_.hits;
        l->lru = ++stamp_;
        if (set_dirty)
            l->dirty = true;
        return true;
    }

    /**
     * Classify a miss on @p addr. Call after access() returned false and
     * before fill() (fill updates the bookkeeping).
     */
    MissType classifyMiss(Addr addr) const;

    /**
     * Insert the line holding @p addr, evicting the LRU way if needed.
     * @return victim information for writeback handling.
     */
    Victim fill(Addr addr, bool dirty = false);

    /**
     * Remove the line holding @p addr if present.
     * @param coherence true if removal is a coherence invalidation (affects
     *                  future miss classification).
     * @return true if the line was present (and whether it was dirty via
     *         @p was_dirty).
     */
    bool invalidate(Addr addr, bool coherence, bool *was_dirty = nullptr);

    /**
     * Forget a pending coherence mark on the line holding @p addr, so a
     * future miss classifies as Conf rather than Cohe. Used when the
     * processor re-acquires the line through a path that does not fill
     * this cache (a write-through L1 never allocates on a store, so the
     * store that repays the invalidation must clear the mark by hand).
     */
    void clearCoherenceMark(Addr addr);

    /** Mark the line holding @p addr dirty (must be present). */
    void markDirty(Addr addr);

    /** Clear the dirty bit (downgrade after a remote read). */
    void markClean(Addr addr);

    /** Drop all contents and classification history (cold caches). */
    void reset();

    /** All currently valid line addresses (used for inclusion checks). */
    std::vector<Addr> residentLines() const;

    const CacheConfig &config() const { return cfg_; }
    std::size_t numSets() const { return numSets_; }

    /**
     * Lifetime event counters (observability). Unlike the per-run
     * ProcStats kept by the Machine, these cover every access since the
     * cache was constructed — reset() cold-starts the *contents* but not
     * the counters.
     */
    struct Counters
    {
        std::uint64_t lookups = 0; ///< access() calls
        std::uint64_t hits = 0;
        std::uint64_t fills = 0;
        std::uint64_t evictions = 0;     ///< fills that displaced a line
        std::uint64_t invalidations = 0; ///< lines removed by invalidate()
        std::uint64_t cohInvalidations = 0; ///< ... due to coherence
    };

    const Counters &counters() const { return ctrs_; }

    /** Register this cache's counters under "<prefix>.<leaf>" names. */
    void registerStats(obs::Registry &reg, const std::string &prefix) const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    std::size_t
    setOf(Addr line_addr) const
    {
        return (line_addr / lineBytes_) & (numSets_ - 1);
    }

    Line *
    find(Addr addr)
    {
        return const_cast<Line *>(
            static_cast<const Cache *>(this)->find(addr));
    }

    const Line *
    find(Addr addr) const
    {
        const Addr la = lineAddrOf(addr);
        const Line *set = &lines_[setOf(la) * cfg_.assoc];
        for (std::size_t w = 0; w < cfg_.assoc; ++w) {
            if (set[w].valid && set[w].tag == la)
                return &set[w];
        }
        return nullptr;
    }

    CacheConfig cfg_;
    std::size_t lineBytes_;
    std::size_t numSets_;
    std::uint64_t stamp_ = 0;
    std::vector<Line> lines_; // numSets_ x assoc
    std::unordered_set<Addr> everLoaded_;
    std::unordered_set<Addr> invalRemoved_;
    Counters ctrs_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_CACHE_HH
