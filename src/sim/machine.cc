#include "sim/machine.hh"

#include <cassert>
#include <cctype>
#include <stdexcept>

#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"
#include "sim/arena.hh"

namespace dss {
namespace sim {

namespace {

constexpr std::uint8_t
bit(ProcId p)
{
    return static_cast<std::uint8_t>(1u << p);
}

std::string
lowered(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

MachineConfig
MachineConfig::baseline()
{
    return MachineConfig{};
}

MachineConfig
MachineConfig::withLineSize(std::size_t l2_line) const
{
    MachineConfig c = *this;
    c.l2.lineBytes = l2_line;
    c.l1.lineBytes = l2_line / 2;
    return c;
}

MachineConfig
MachineConfig::withCacheSizes(std::size_t l1_bytes,
                              std::size_t l2_bytes) const
{
    MachineConfig c = *this;
    c.l1.sizeBytes = l1_bytes;
    c.l2.sizeBytes = l2_bytes;
    return c;
}

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg),
      dir_(cfg.nprocs, cfg.l2.lineBytes, cfg.pageBytes,
           AddressSpace::kPrivateBase, AddressSpace::kPrivateStride,
           cfg.lat)
{
    if (cfg_.l1.lineBytes * 2 != cfg_.l2.lineBytes)
        throw std::invalid_argument("L1 line must be half the L2 line");
    // L2 round trip, adjusted for the L1-line transfer time relative to
    // the baseline 32 B L1 line.
    std::int64_t adj =
        (static_cast<std::int64_t>(cfg_.l1.lineBytes) - 32) /
        static_cast<std::int64_t>(cfg_.lat.ctrlBytesPerCycle);
    if (adj < 0)
        adj = 0; // critical-word-first: short lines are not faster
    l2HitLat_ = cfg_.lat.l2Hit + static_cast<Cycles>(adj);
    nodes_.reserve(cfg_.nprocs);
    for (unsigned p = 0; p < cfg_.nprocs; ++p)
        nodes_.push_back(std::make_unique<Node>(cfg_));
}

void
Machine::resetMemoryState()
{
    for (auto &n : nodes_) {
        n->l1.reset();
        n->l2.reset();
        n->wb.reset();
        n->prefetched.clear();
    }
    dir_.reset();
    locks_.reset();
}

void
Machine::dropFromDirectory(ProcId p, Addr l2_line)
{
    Directory::Entry &e = dir_.entry(l2_line);
    if (e.state == Directory::State::Dirty && e.owner == p) {
        e.state = Directory::State::Uncached;
        e.sharers = 0;
        return;
    }
    e.sharers &= static_cast<std::uint8_t>(~bit(p));
    if (e.sharers == 0 && e.state == Directory::State::Shared)
        e.state = Directory::State::Uncached;
}

void
Machine::invalidateOtherCaches(Addr l2_line, ProcId except)
{
    Directory::Entry &e = dir_.entry(l2_line);
    for (ProcId q = 0; q < cfg_.nprocs; ++q) {
        if (q == except || !(e.sharers & bit(q)))
            continue;
        Node &n = *nodes_[q];
        n.l2.invalidate(l2_line, /*coherence=*/true);
        for (Addr a = l2_line; a < l2_line + cfg_.l2.lineBytes;
             a += cfg_.l1.lineBytes) {
            n.l1.invalidate(a, /*coherence=*/true);
            n.prefetched.erase(a);
        }
    }
    if (e.state == Directory::State::Dirty && e.owner != except) {
        e.state = Directory::State::Uncached;
        e.sharers = 0;
    } else {
        e.sharers &= bit(except);
        if (e.sharers == 0 && e.state == Directory::State::Shared)
            e.state = Directory::State::Uncached;
    }
}

void
Machine::fillL1(ProcId p, Addr addr)
{
    Node &n = *nodes_[p];
    if (n.l1.contains(addr))
        return;
    Cache::Victim v = n.l1.fill(addr);
    if (v.valid)
        n.prefetched.erase(v.lineAddr); // write-through L1: never dirty
}

void
Machine::fillL2(ProcId p, Addr addr, bool dirty)
{
    Node &n = *nodes_[p];
    Cache::Victim v = n.l2.fill(addr, dirty);
    if (!v.valid)
        return;
    // Inclusion: the L1 cannot keep sublines of an evicted L2 line.
    for (Addr a = v.lineAddr; a < v.lineAddr + cfg_.l2.lineBytes;
         a += cfg_.l1.lineBytes) {
        n.l1.invalidate(a, /*coherence=*/false);
        n.prefetched.erase(a);
    }
    dropFromDirectory(p, v.lineAddr);
    if (v.dirty) {
        // Background writeback occupies the victim's home controller but
        // does not stall the processor.
        dir_.acquireController(dir_.homeOf(v.lineAddr),
                               runs_.empty() ? 0 : runs_[p].clock);
    }
}

Machine::ReadOutcome
Machine::readAccess(ProcId p, Addr addr, DataClass cls)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    ProcStats &st = r.stats;
    const Addr l1_line = n.l1.lineAddrOf(addr);
    const Addr l2_line = n.l2.lineAddrOf(addr);

    ++st.reads;

    // Loads are satisfied by a matching store still in the write buffer.
    if (n.wb.containsLine(l1_line, r.clock)) {
        ++st.l1Hits;
        return {cfg_.lat.l1Hit};
    }

    if (n.l1.access(addr)) {
        ++st.l1Hits;
        auto pf = n.prefetched.find(l1_line);
        if (pf != n.prefetched.end()) {
            ++st.prefetchesUseful;
            // The prefetch may still be in flight: wait out the remainder.
            Cycles extra =
                pf->second > r.clock ? pf->second - r.clock : 0;
            n.prefetched.erase(pf);
            return {cfg_.lat.l1Hit + extra};
        }
        return {cfg_.lat.l1Hit};
    }

    st.l1Misses.add(cls, n.l1.classifyMiss(addr));
    ++st.l2Accesses;

    Cycles latency;
    if (n.l2.access(addr)) {
        ++st.l2Hits;
        latency = l2HitLat_;
    } else {
        st.l2Misses.add(cls, n.l2.classifyMiss(addr));
        Directory::Entry &e = dir_.entry(l2_line);
        const ProcId home = dir_.homeOf(l2_line);
        const bool dirty_else =
            e.state == Directory::State::Dirty && e.owner != p;
        const Cycles qdelay = dir_.acquireController(home, r.clock);
        latency = dir_.transactionLatency(p, home, e.owner, dirty_else) +
                  qdelay;
        if (dirty_else) {
            // The owner's copy is written back and downgraded to Shared.
            Node &own = *nodes_[e.owner];
            if (own.l2.contains(l2_line))
                own.l2.markClean(l2_line);
            e.state = Directory::State::Shared;
            e.sharers = static_cast<std::uint8_t>(bit(e.owner) | bit(p));
        } else {
            if (e.state == Directory::State::Uncached)
                e.state = Directory::State::Shared;
            e.sharers |= bit(p);
        }
        fillL2(p, addr, /*dirty=*/false);
    }
    fillL1(p, addr);

    // Sequential prefetch, triggered by primary-cache read misses on
    // database data: fetch the next prefetchDegree L1 lines into the L1
    // (paper Section 6). Miss-triggered issue reproduces the paper's
    // measured effectiveness — prefetching removes about a third of the
    // Data stall rather than hiding the whole stream.
    if (cfg_.prefetchData && cls == DataClass::Data)
        issuePrefetches(p, addr);

    return {latency};
}

Cycles
Machine::writeTransaction(ProcId p, Addr addr, DataClass cls)
{
    (void)cls;
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    const Addr l2_line = n.l2.lineAddrOf(addr);
    Directory::Entry &e = dir_.entry(l2_line);
    const ProcId home = dir_.homeOf(l2_line);

    Cycles drain;
    if (n.l2.contains(l2_line)) {
        if (e.state == Directory::State::Dirty && e.owner == p) {
            // Already exclusively owned: drain straight into the L2.
            drain = l2HitLat_;
        } else {
            // Upgrade: invalidate the other sharers via the home node.
            const Cycles qdelay = dir_.acquireController(home, r.clock);
            drain = dir_.transactionLatency(p, home, p, false) + qdelay;
            invalidateOtherCaches(l2_line, p);
        }
        n.l2.access(addr, /*set_dirty=*/true);
    } else {
        // Write-allocate miss: obtain an exclusive copy.
        const bool dirty_else =
            e.state == Directory::State::Dirty && e.owner != p;
        const Cycles qdelay = dir_.acquireController(home, r.clock);
        drain = dir_.transactionLatency(p, home, e.owner, dirty_else) +
                qdelay;
        invalidateOtherCaches(l2_line, p);
        fillL2(p, addr, /*dirty=*/true);
    }
    e.state = Directory::State::Dirty;
    e.owner = p;
    e.sharers = bit(p);

    // Write-through L1: a resident line is updated in place (stays valid);
    // a missing line is not allocated.
    n.l1.access(addr);
    return drain;
}

Cycles
Machine::rmwAccess(ProcId p, Addr addr, DataClass cls)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    ProcStats &st = r.stats;
    const Addr l2_line = n.l2.lineAddrOf(addr);

    ++st.reads;
    const bool l1hit = n.l1.access(addr);
    if (l1hit) {
        ++st.l1Hits;
    } else {
        st.l1Misses.add(cls, n.l1.classifyMiss(addr));
        ++st.l2Accesses;
    }

    Directory::Entry &e = dir_.entry(l2_line);
    const ProcId home = dir_.homeOf(l2_line);
    const bool l2has = n.l2.contains(l2_line);

    Cycles latency;
    if (l2has && e.state == Directory::State::Dirty && e.owner == p) {
        // Exclusive in our L2: the atomic completes at the L2.
        if (!l1hit)
            ++st.l2Hits;
        n.l2.access(addr, /*set_dirty=*/true);
        latency = l2HitLat_;
    } else {
        if (!l2has && !l1hit)
            st.l2Misses.add(cls, n.l2.classifyMiss(addr));
        const bool dirty_else =
            e.state == Directory::State::Dirty && e.owner != p;
        const Cycles qdelay = dir_.acquireController(home, r.clock);
        latency = dir_.transactionLatency(p, home, e.owner, dirty_else) +
                  qdelay;
        invalidateOtherCaches(l2_line, p);
        if (l2has)
            n.l2.access(addr, /*set_dirty=*/true);
        else
            fillL2(p, addr, /*dirty=*/true);
        e.state = Directory::State::Dirty;
        e.owner = p;
        e.sharers = bit(p);
    }
    if (!l1hit)
        fillL1(p, addr);
    return latency;
}

void
Machine::issuePrefetches(ProcId p, Addr addr)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    const Addr l1_line = n.l1.lineAddrOf(addr);
    Cycles issue = r.clock;
    for (unsigned i = 1; i <= cfg_.prefetchDegree; ++i) {
        const Addr a = l1_line + i * cfg_.l1.lineBytes;
        if (n.l1.contains(a))
            continue;
        const Addr l2_line = n.l2.lineAddrOf(a);
        Cycles ready = issue + l2HitLat_;
        if (!n.l2.contains(l2_line)) {
            Directory::Entry &e = dir_.entry(l2_line);
            if (e.state == Directory::State::Dirty && e.owner != p)
                continue; // keep the prefetcher out of dirty remote lines
            // The fetch occupies the home controller (contention) but the
            // processor does not wait for it.
            const ProcId home = dir_.homeOf(l2_line);
            const Cycles qdelay = dir_.acquireController(home, issue);
            ready = issue + qdelay +
                    dir_.transactionLatency(p, home, e.owner, false);
            if (e.state == Directory::State::Uncached)
                e.state = Directory::State::Shared;
            e.sharers |= bit(p);
            fillL2(p, a, /*dirty=*/false);
        }
        fillL1(p, a);
        n.prefetched[n.l1.lineAddrOf(a)] = ready;
        // Prefetches leave the node back to back, one per miss-port slot.
        issue += cfg_.lat.controllerOccupancy;
        ++r.stats.prefetchesIssued;
    }
}

void
Machine::span(ProcId p, obs::SpanKind k, Cycles start, Cycles end)
{
    if (timeline_)
        timeline_->exec(p, k, start, end);
}

std::vector<ProcStats>
Machine::statsSnapshot(std::size_t n) const
{
    std::vector<ProcStats> out;
    out.reserve(n);
    for (std::size_t p = 0; p < n && p < runs_.size(); ++p)
        out.push_back(runs_[p].stats);
    return out;
}

void
Machine::doRead(ProcId p, const TraceEntry &e)
{
    ProcRun &r = runs_[p];
    ReadOutcome o = readAccess(p, e.addr, e.cls);
    const Cycles stall =
        o.latency > cfg_.lat.l1Hit ? o.latency - cfg_.lat.l1Hit : 0;
    r.stats.busy += cfg_.issueCyclesPerRef;
    r.stats.memStall += stall;
    r.stats.memStallByGroup[static_cast<std::size_t>(groupOf(e.cls))] +=
        stall;
    span(p, obs::SpanKind::Busy, r.clock, r.clock + cfg_.issueCyclesPerRef);
    span(p, obs::SpanKind::Mem, r.clock + cfg_.issueCyclesPerRef,
         r.clock + cfg_.issueCyclesPerRef + stall);
    r.clock += cfg_.issueCyclesPerRef + stall;
}

void
Machine::doWrite(ProcId p, const TraceEntry &e)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    ++r.stats.writes;
    r.stats.busy += cfg_.issueCyclesPerRef;
    span(p, obs::SpanKind::Busy, r.clock, r.clock + cfg_.issueCyclesPerRef);
    r.clock += cfg_.issueCyclesPerRef;

    const Cycles drain = writeTransaction(p, e.addr, e.cls);
    const Cycles stall =
        n.wb.push(r.clock, drain, n.l1.lineAddrOf(e.addr));
    if (stall) {
        ++r.stats.wbOverflows;
        r.stats.memStall += stall;
        r.stats.memStallByGroup[static_cast<std::size_t>(groupOf(e.cls))] +=
            stall;
        span(p, obs::SpanKind::Mem, r.clock, r.clock + stall);
        r.clock += stall;
    }
}

void
Machine::doLockAcq(ProcId p, const TraceEntry &e)
{
    ProcRun &r = runs_[p];
    const Addr w = e.addr;

    if (r.acqPending) {
        // Phase 2: our test&set transaction has completed; take the lock
        // if it is (still) free. The lock is held only from this point, so
        // the hold time covers the critical section, not the acquire
        // latency — exactly like a real test&test&set.
        r.acqPending = false;
        if (locks_.isHeld(w) && locks_.holder(w) != p) {
            // Lost the race: spin (pure wait, charged to MSync on wake-up;
            // re-execution pays a fresh coherence transfer on the word).
            r.blocked = true;
            r.blockStart = r.clock;
            locks_.addWaiter(w, p);
            return;
        }
        if (!locks_.isHeld(w)) {
            bool ok = locks_.tryAcquire(w, p);
            assert(ok);
            (void)ok;
        }
        // else: handed off to us by the releaser.
        if (timeline_)
            holdStart_[w] = r.clock;
        ++r.pos;
        return;
    }

    if (locks_.isHeld(w) && locks_.holder(w) != p) {
        // Test phase sees the lock held: spin without issuing the RMW.
        r.blocked = true;
        r.blockStart = r.clock;
        locks_.addWaiter(w, p);
        return; // entry will be re-executed on wake-up
    }

    // Phase 1: the test&set itself — an exclusive access to the lock word.
    // Its stall is memory time on metadata; only spinning is MSync.
    const Cycles lat = rmwAccess(p, w, e.cls);
    const Cycles stall =
        lat > cfg_.lat.l1Hit ? lat - cfg_.lat.l1Hit : 0;
    r.stats.busy += cfg_.issueCyclesPerRef;
    r.stats.memStall += stall;
    r.stats.memStallByGroup[static_cast<std::size_t>(groupOf(e.cls))] +=
        stall;
    span(p, obs::SpanKind::Busy, r.clock, r.clock + cfg_.issueCyclesPerRef);
    span(p, obs::SpanKind::Mem, r.clock + cfg_.issueCyclesPerRef,
         r.clock + cfg_.issueCyclesPerRef + stall);
    r.clock += cfg_.issueCyclesPerRef + stall;
    r.acqPending = true; // grab happens at the new, later time
}

void
Machine::doLockRel(ProcId p, const TraceEntry &e)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];

    // The release store goes through the write buffer like any other store
    // and invalidates the spinners' cached copies of the lock word.
    ++r.stats.writes;
    r.stats.busy += cfg_.issueCyclesPerRef;
    span(p, obs::SpanKind::Busy, r.clock, r.clock + cfg_.issueCyclesPerRef);
    r.clock += cfg_.issueCyclesPerRef;
    const Cycles drain = writeTransaction(p, e.addr, e.cls);
    const Cycles stall =
        n.wb.push(r.clock, drain, n.l1.lineAddrOf(e.addr));
    if (stall) {
        ++r.stats.wbOverflows;
        r.stats.memStall += stall;
        r.stats.memStallByGroup[static_cast<std::size_t>(groupOf(e.cls))] +=
            stall;
        span(p, obs::SpanKind::Mem, r.clock, r.clock + stall);
        r.clock += stall;
    }

    if (timeline_) {
        auto hold = holdStart_.find(e.addr);
        if (hold != holdStart_.end()) {
            timeline_->lockSpan(e.addr, e.cls, obs::SpanKind::LockHold, p,
                                hold->second, r.clock);
            holdStart_.erase(hold);
        }
    }

    const ProcId next = locks_.release(e.addr, p);
    if (next != LockTable::kNoWaiter) {
        ProcRun &w = runs_[next];
        assert(w.blocked);
        const Cycles wake = std::max(w.clock, r.clock);
        w.stats.syncStall += wake - w.blockStart;
        span(next, obs::SpanKind::Sync, w.blockStart, wake);
        if (timeline_)
            timeline_->lockSpan(e.addr, e.cls, obs::SpanKind::LockSpin,
                                next, w.blockStart, wake);
        w.clock = wake;
        w.blocked = false;
    }
    ++r.pos;
}

void
Machine::step(ProcId p)
{
    ProcRun &r = runs_[p];
    const TraceEntry &e = (*r.entries)[r.pos];
    switch (e.op) {
      case Op::Read:
        doRead(p, e);
        ++r.pos;
        break;
      case Op::Write:
        doWrite(p, e);
        ++r.pos;
        break;
      case Op::Busy:
        r.stats.busy += e.extra;
        // Untraced private stack/static references ride along with the
        // busy instructions and always hit (paper Section 4.2, about one
        // reference per four instructions); count them so miss rates
        // share the paper's denominator.
        r.stats.assumedHitReads += e.extra / 4;
        span(p, obs::SpanKind::Busy, r.clock, r.clock + e.extra);
        r.clock += e.extra;
        ++r.pos;
        break;
      case Op::LockAcq:
        doLockAcq(p, e);
        break;
      case Op::LockRel:
        doLockRel(p, e);
        break;
    }
}

SimStats
Machine::run(const std::vector<const TraceStream *> &traces,
             obs::Sampler *sampler, obs::Timeline *timeline)
{
    if (traces.size() > cfg_.nprocs)
        throw std::invalid_argument("more traces than processors");

    runs_.clear();
    runs_.resize(cfg_.nprocs);
    for (std::size_t i = 0; i < traces.size(); ++i)
        runs_[i].entries = &traces[i]->entries();

    locks_.reset();
    dir_.resetControllers();
    for (auto &n : nodes_)
        n->wb.reset();

    sampler_ = sampler;
    timeline_ = timeline;
    holdStart_.clear();
    if (sampler_)
        sampler_->beginRun(traces.size());
    if (timeline_)
        timeline_->beginRun();

    for (;;) {
        ProcId best = cfg_.nprocs;
        for (ProcId p = 0; p < cfg_.nprocs; ++p) {
            ProcRun &r = runs_[p];
            if (r.done() || r.blocked)
                continue;
            if (best == cfg_.nprocs || r.clock < runs_[best].clock)
                best = p;
        }
        if (best == cfg_.nprocs) {
#ifndef NDEBUG
            for (ProcId p = 0; p < cfg_.nprocs; ++p)
                assert(runs_[p].done() && "deadlock: all runnable blocked");
#endif
            break;
        }
        // The chosen processor holds the minimum runnable clock: once it
        // crosses an epoch boundary, every processor has.
        if (sampler_ && sampler_->due(runs_[best].clock))
            sampler_->sample(runs_[best].clock,
                             statsSnapshot(traces.size()));
        step(best);
    }

    SimStats out;
    out.procs.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i)
        out.procs.push_back(runs_[i].stats);

    if (sampler_)
        sampler_->finishRun(out.executionTime(),
                            statsSnapshot(traces.size()));
    sampler_ = nullptr;
    timeline_ = nullptr;
    return out;
}

void
Machine::registerStats(obs::Registry &reg, const std::string &prefix) const
{
    for (ProcId p = 0; p < cfg_.nprocs; ++p) {
        const std::string base =
            obs::metricName(prefix, "proc" + std::to_string(p));
        auto proc = [&](const char *leaf, auto getter) {
            reg.addCounter(obs::metricName(base, leaf), [this, p, getter] {
                return p < runs_.size() ? getter(runs_[p].stats)
                                        : std::uint64_t{0};
            });
        };
        // Per-run ProcStats views; flat snake_case leaves so they cannot
        // collide with the per-component lifetime counters below.
        proc("busy", [](const ProcStats &s) { return s.busy; });
        proc("mem_stall", [](const ProcStats &s) { return s.memStall; });
        proc("sync_stall", [](const ProcStats &s) { return s.syncStall; });
        proc("reads", [](const ProcStats &s) { return s.reads; });
        proc("writes", [](const ProcStats &s) { return s.writes; });
        proc("l1_hits", [](const ProcStats &s) { return s.l1Hits; });
        proc("l2_accesses",
             [](const ProcStats &s) { return s.l2Accesses; });
        proc("l2_hits", [](const ProcStats &s) { return s.l2Hits; });
        proc("wb_overflows",
             [](const ProcStats &s) { return s.wbOverflows; });
        proc("prefetch_issued",
             [](const ProcStats &s) { return s.prefetchesIssued; });
        proc("prefetch_useful",
             [](const ProcStats &s) { return s.prefetchesUseful; });

        // One counter per miss-table cell: proc0.l1.miss.cold.index ...
        for (int lvl = 0; lvl < 2; ++lvl) {
            const bool l1 = lvl == 0;
            for (std::size_t t = 0; t < kNumMissTypes; ++t) {
                for (std::size_t c = 0; c < kNumDataClasses; ++c) {
                    auto mt = static_cast<MissType>(t);
                    auto cls = static_cast<DataClass>(c);
                    std::string name = obs::metricName(
                        base, std::string(l1 ? "l1" : "l2") + ".miss." +
                                  lowered(missTypeName(mt)) + "." +
                                  lowered(dataClassName(cls)));
                    reg.addCounter(name, [this, p, l1, cls, mt] {
                        if (p >= runs_.size())
                            return std::uint64_t{0};
                        const ProcStats &s = runs_[p].stats;
                        return (l1 ? s.l1Misses : s.l2Misses).of(cls, mt);
                    });
                }
            }
        }

        nodes_[p]->l1.registerStats(reg, base + ".l1");
        nodes_[p]->l2.registerStats(reg, base + ".l2");
        nodes_[p]->wb.registerStats(reg, base + ".wb");
    }
    dir_.registerStats(reg, obs::metricName(prefix, "dir"));
    locks_.registerStats(reg, obs::metricName(prefix, "locks"));
}

} // namespace sim
} // namespace dss
