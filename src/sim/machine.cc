#include "sim/machine.hh"

#include <cassert>
#include <cctype>
#include <stdexcept>

#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"
#include "sim/arena.hh"
#include "sim/check.hh"
#include "sim/error.hh"
#include "sim/hierarchy.hh"
#include "sim/machine_impl.hh"
#include "sim/par_engine.hh"

namespace dss {
namespace sim {

namespace {

constexpr std::uint64_t
bit(ProcId p)
{
    return std::uint64_t{1} << p;
}

std::string
lowered(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

MachineConfig
MachineConfig::baseline()
{
    return MachineConfig{};
}

void
MachineConfig::validate() const
{
    validateMachineConfig(*this);
}

MachineConfig
MachineConfig::withLineSize(std::size_t l2_line) const
{
    MachineConfig c = *this;
    for (std::size_t lvl = 1; lvl < c.levels.size(); ++lvl)
        c.levels[lvl].lineBytes = l2_line;
    c.l1().lineBytes = l2_line / 2;
    c.validate();
    return c;
}

MachineConfig
MachineConfig::withCacheSizes(std::size_t l1_bytes,
                              std::size_t l2_bytes) const
{
    MachineConfig c = *this;
    c.l1().sizeBytes = l1_bytes;
    c.coherent().sizeBytes = l2_bytes;
    c.validate();
    return c;
}

Machine::Machine(const MachineConfig &cfg)
    : cfg_((validateMachineConfig(cfg), cfg)),
      dir_(cfg.nprocs, cfg.coherent().lineBytes, cfg.pageBytes,
           AddressSpace::kPrivateBase, AddressSpace::kPrivateStride,
           cfg.lat)
{
    // Hit round trips, adjusted for the L1-line transfer time relative
    // to the baseline 32 B L1 line (critical-word-first: short lines are
    // not faster). Level 0's entry is the no-stall L1 hit cost.
    std::int64_t adj =
        (static_cast<std::int64_t>(cfg_.l1().lineBytes) - 32) /
        static_cast<std::int64_t>(cfg_.lat.ctrlBytesPerCycle);
    if (adj < 0)
        adj = 0;
    nlev_ = cfg_.numLevels();
    levelHitLat_[0] = cfg_.lat.l1Hit;
    for (std::size_t lvl = 1; lvl < nlev_; ++lvl)
        levelHitLat_[lvl] =
            cfg_.levels[lvl].hitCycles + static_cast<Cycles>(adj);
    cohHitLat_ = levelHitLat_[nlev_ - 1];
    nodes_.reserve(cfg_.nprocs);
    for (unsigned p = 0; p < cfg_.nprocs; ++p)
        nodes_.push_back(std::make_unique<Node>(cfg_));
    defaultPlacement_ = PlacementPolicy::interleave(
        {cfg_.nprocs, cfg_.pageBytes, AddressSpace::kPrivateBase,
         AddressSpace::kPrivateStride});
    placement_ = defaultPlacement_.get();
    dir_.setPlacement(placement_);
}

void
Machine::setPlacement(PlacementPolicy *placement)
{
    placement_ = placement ? placement : defaultPlacement_.get();
    dir_.setPlacement(placement_);
}

void
Machine::resetStats()
{
    dir_.resetStats();
}

void
Machine::resetMemoryState()
{
    for (auto &n : nodes_) {
        for (Cache &c : n->caches)
            c.reset();
        n->wb.reset();
        n->prefetched.clear();
    }
    dir_.reset();
    locks_.reset();
    if (sharing_)
        sharing_->reset();
}

void
Machine::enableSharing(bool on)
{
    if (on) {
        if (!sharing_)
            sharing_ = std::make_unique<SharingTracker>(cfg_.nprocs);
    } else {
        sharing_.reset();
    }
}

void
Machine::classifyCoheMiss(ProcStats &st, ProcId p, Addr addr, unsigned size,
                          Addr l2_line) const
{
    const WordMask wm =
        wordMaskOf(addr, size, l2_line, cfg_.coherent().lineBytes);
    if (sharing_->isTrueSharing(p, l2_line, wm))
        ++st.l2CoheTrue;
    else
        ++st.l2CoheFalse;
}

void
Machine::dropFromDirectory(ProcId p, Addr l2_line)
{
    Directory::Entry &e = dir_.entry(l2_line);
    if (e.state == Directory::State::Dirty && e.owner == p) {
        e.state = Directory::State::Uncached;
        e.sharers = 0;
        return;
    }
    e.sharers &= ~bit(p);
    if (e.sharers == 0 && e.state == Directory::State::Shared)
        e.state = Directory::State::Uncached;
}

void
Machine::invalidateUpperLevels(ProcId p, Addr line, bool coherence)
{
    Node &n = *nodes_[p];
    const std::size_t coh_bytes = cfg_.coherent().lineBytes;
    for (std::size_t u = 0; u + 1 < n.caches.size(); ++u) {
        for (Addr a = line; a < line + coh_bytes;
             a += cfg_.levels[u].lineBytes) {
            n.caches[u].invalidate(a, coherence);
            if (u == 0)
                n.prefetched.erase(a);
        }
    }
}

void
Machine::invalidateOtherCaches(Addr l2_line, ProcId except)
{
    Directory::Entry &e = dir_.entry(l2_line);
    for (ProcId q = 0; q < cfg_.nprocs; ++q) {
        if (q == except || !(e.sharers & bit(q)))
            continue;
        nodes_[q]->coh().invalidate(l2_line, /*coherence=*/true);
        invalidateUpperLevels(q, l2_line, /*coherence=*/true);
    }
    if (e.state == Directory::State::Dirty && e.owner != except) {
        e.state = Directory::State::Uncached;
        e.sharers = 0;
    } else {
        e.sharers &= bit(except);
        if (e.sharers == 0 && e.state == Directory::State::Shared)
            e.state = Directory::State::Uncached;
    }
}

void
Machine::applyReadFillDir(ProcId p, Addr l2_line)
{
    Directory::Entry &e = dir_.entry(l2_line);
    if (e.state == Directory::State::Dirty && e.owner != p) {
        // The owner's copy is written back and downgraded to Shared.
        Node &own = *nodes_[e.owner];
        if (own.coh().contains(l2_line))
            own.coh().markClean(l2_line);
        e.state = Directory::State::Shared;
        e.sharers = bit(e.owner) | bit(p);
    } else {
        if (e.state == Directory::State::Uncached)
            e.state = Directory::State::Shared;
        e.sharers |= bit(p);
    }
    if (sharing_)
        sharing_->recordFill(p, l2_line);
}

void
Machine::applyStoreDir(ProcId p, Addr l2_line, WordMask wmask)
{
    // invalidateOtherCaches is a no-op when the line is already
    // exclusively owned by p, so the unconditional call covers the
    // owned-drain, upgrade and write-allocate paths alike.
    invalidateOtherCaches(l2_line, p);
    Directory::Entry &e = dir_.entry(l2_line);
    e.state = Directory::State::Dirty;
    e.owner = p;
    e.sharers = bit(p);
    // Re-assert the owner's dirty bit. The write path set it in the
    // same step under the sequential engine (no-op there), but under
    // the parallel engine this op replays at the barrier, where an
    // interleaved remote ReadFill may have downgraded the copy to clean
    // after the eager phase-A cache update.
    Node &n = *nodes_[p];
    if (n.coh().contains(l2_line))
        n.coh().markDirty(l2_line);
    if (sharing_)
        sharing_->recordStore(p, l2_line, wmask);
}

void
Machine::reconcileDirAfterBarrier(Addr l2_line)
{
    // Parallel-engine barrier replay applies directory ops in serialized
    // order while the caches were updated eagerly in phase A, so the two
    // can cross: a replayed remote store invalidates a copy whose fill
    // or sharer-bit op replays afterwards, leaving the directory naming
    // copies that no longer exist. Re-derive the entry from the caches —
    // the ground truth — once the barrier has fully drained. Sequential
    // runs never call this: their directory ops are applied in-step.
    Directory::Entry &e = dir_.entry(l2_line);
    std::uint64_t holders = 0;
    for (ProcId p = 0; p < static_cast<ProcId>(nodes_.size()); ++p)
        if (nodes_[p]->coh().contains(l2_line))
            holders |= bit(p);
    switch (e.state) {
      case Directory::State::Dirty:
        if (!(holders & bit(e.owner))) {
            // The owner's copy was invalidated by an earlier-serialized
            // store after its own fill had already applied. Remaining
            // clean copies keep the line Shared; otherwise the line
            // falls back to memory.
            e.state = holders ? Directory::State::Shared
                              : Directory::State::Uncached;
            e.sharers = holders;
        }
        break;
      case Directory::State::Shared:
        e.sharers &= holders;
        if (e.sharers == 0)
            e.state = Directory::State::Uncached;
        break;
      case Directory::State::Uncached:
        if (holders) {
            e.state = Directory::State::Shared;
            e.sharers = holders;
        }
        break;
    }
}

void
Machine::applyPrefetchShareDir(ProcId p, Addr l2_line)
{
    Directory::Entry &e = dir_.entry(l2_line);
    if (e.state == Directory::State::Dirty && e.owner != p)
        return; // raced with a remote store; the prefetcher backs off
    if (e.state == Directory::State::Uncached)
        e.state = Directory::State::Shared;
    e.sharers |= bit(p);
    if (sharing_)
        sharing_->recordFill(p, l2_line);
}

void
Machine::fillL1(ProcId p, Addr addr)
{
    Node &n = *nodes_[p];
    if (n.l1().contains(addr))
        return;
    Cache::Victim v = n.l1().fill(addr);
    if (v.valid)
        n.prefetched.erase(v.lineAddr); // write-through L1: never dirty
}

void
Machine::fillIntermediates(ProcId p, Addr addr)
{
    Node &n = *nodes_[p];
    for (std::size_t lvl = n.caches.size() - 1; lvl-- > 1;) {
        Cache &c = n.caches[lvl];
        if (c.contains(addr))
            continue;
        Cache::Victim v = c.fill(addr, /*dirty=*/false);
        if (!v.valid)
            continue;
        // Strict inclusion: levels above this one drop the victim's
        // sublines. No writeback — intermediates hold clean copies, and
        // the level below still has the line.
        for (std::size_t u = 0; u < lvl; ++u) {
            for (Addr a = v.lineAddr;
                 a < v.lineAddr + cfg_.levels[lvl].lineBytes;
                 a += cfg_.levels[u].lineBytes) {
                n.caches[u].invalidate(a, /*coherence=*/false);
                if (u == 0)
                    n.prefetched.erase(a);
            }
        }
    }
}

void
Machine::span(ProcId p, obs::SpanKind k, Cycles start, Cycles end)
{
    if (timeline_)
        timeline_->exec(p, k, start, end);
}

std::vector<ProcStats>
Machine::statsSnapshot(std::size_t n) const
{
    std::vector<ProcStats> out;
    out.reserve(n);
    for (std::size_t p = 0; p < n && p < runs_.size(); ++p)
        out.push_back(runs_[p].stats);
    return out;
}

void
Machine::doLockAcq(ProcId p, const TraceEntry &e)
{
    ProcRun &r = runs_[p];
    const Addr w = e.addr;

    if (r.acqPending) {
        // Phase 2: our test&set transaction has completed; take the lock
        // if it is (still) free. The lock is held only from this point, so
        // the hold time covers the critical section, not the acquire
        // latency — exactly like a real test&test&set.
        r.acqPending = false;
        if (locks_.isHeld(w) && locks_.holder(w) != p) {
            // Lost the race: spin (pure wait, charged to MSync on wake-up;
            // re-execution pays a fresh coherence transfer on the word).
            r.blocked = true;
            r.blockStart = r.clock;
            locks_.addWaiter(w, p);
            return;
        }
        if (!locks_.isHeld(w)) {
            bool ok = locks_.tryAcquire(w, p);
            assert(ok);
            (void)ok;
        }
        // else: handed off to us by the releaser.
        if (timeline_)
            holdStart_[w] = r.clock;
        ++r.pos;
        return;
    }

    if (locks_.isHeld(w) && locks_.holder(w) != p) {
        // Test phase sees the lock held: spin without issuing the RMW.
        r.blocked = true;
        r.blockStart = r.clock;
        locks_.addWaiter(w, p);
        return; // entry will be re-executed on wake-up
    }

    // Phase 1: the test&set itself — an exclusive access to the lock word.
    // Its stall is memory time on metadata; only spinning is MSync.
    SeqPort port{*this};
    const Cycles lat = rmwAccessT(port, p, w, e.cls, e.size);
    const Cycles stall =
        lat > cfg_.lat.l1Hit ? lat - cfg_.lat.l1Hit : 0;
    r.stats.busy += cfg_.issueCyclesPerRef;
    r.stats.memStall += stall;
    r.stats.memStallByGroup[static_cast<std::size_t>(groupOf(e.cls))] +=
        stall;
    span(p, obs::SpanKind::Busy, r.clock, r.clock + cfg_.issueCyclesPerRef);
    span(p, obs::SpanKind::Mem, r.clock + cfg_.issueCyclesPerRef,
         r.clock + cfg_.issueCyclesPerRef + stall);
    r.clock += cfg_.issueCyclesPerRef + stall;
    r.acqPending = true; // grab happens at the new, later time
}

void
Machine::doLockRel(ProcId p, const TraceEntry &e)
{
    // The release store goes through the write buffer like any other store
    // and invalidates the spinners' cached copies of the lock word.
    SeqPort port{*this};
    preemptReleaseT(port, p);
    doWriteT(port, p, e);
    releaseLock(p, e, runs_[p].clock);
    ++runs_[p].pos;
}

ProcId
Machine::releaseLock(ProcId p, const TraceEntry &e, Cycles rel_clock)
{
    if (timeline_) {
        auto hold = holdStart_.find(e.addr);
        if (hold != holdStart_.end()) {
            timeline_->lockSpan(e.addr, e.cls, obs::SpanKind::LockHold, p,
                                hold->second, rel_clock);
            holdStart_.erase(hold);
        }
    }

    const ProcId next = locks_.release(e.addr, p);
    if (next != LockTable::kNoWaiter) {
        ProcRun &w = runs_[next];
        assert(w.blocked);
        const Cycles wake = std::max(w.clock, rel_clock);
        w.stats.syncStall += wake - w.blockStart;
        span(next, obs::SpanKind::Sync, w.blockStart, wake);
        if (timeline_)
            timeline_->lockSpan(e.addr, e.cls, obs::SpanKind::LockSpin,
                                next, w.blockStart, wake);
        w.clock = wake;
        w.blocked = false;
    }
    return next;
}

void
Machine::step(ProcId p)
{
    ProcRun &r = runs_[p];
    stepEntry(p, (*r.entries)[r.pos]);
}

void
Machine::stepEntry(ProcId p, const TraceEntry &e)
{
    ProcRun &r = runs_[p];
    SeqPort port{*this};
    switch (e.op) {
      case Op::Read:
        doReadT(port, p, e);
        ++r.pos;
        break;
      case Op::Write:
        doWriteT(port, p, e);
        ++r.pos;
        break;
      case Op::Busy:
        doBusyT(port, p, e);
        ++r.pos;
        break;
      case Op::LockAcq:
        doLockAcq(p, e);
        break;
      case Op::LockRel:
        doLockRel(p, e);
        break;
    }
    if (checker_)
        checker_->onStep(*this, p, e);
}

void
Machine::beginModelSteps()
{
    resetMemoryState();
    runs_.clear();
    runs_.resize(cfg_.nprocs);
    for (ProcRun &r : runs_)
        r.stats.levels = static_cast<std::uint8_t>(cfg_.numLevels());
    dir_.resetControllers();
    holdStart_.clear();
    // Resolve page homes as run() would; with no traces a first-touch
    // policy simply claims nothing and interleave stays interleave.
    placement_->beginRun({});
}

void
Machine::modelStep(ProcId p, const TraceEntry &e)
{
    assert(p < runs_.size() && "beginModelSteps() before modelStep()");
    stepEntry(p, e);
}

void
Machine::modelEvict(ProcId p, Addr addr)
{
    assert(p < runs_.size() && "beginModelSteps() before modelEvict()");
    SeqPort port{*this};
    faultEvictT(port, p, addr);
}

void
Machine::setProcWaitState(ProcId p, bool blocked, bool acq_pending)
{
    ProcRun &r = runs_.at(p);
    r.blocked = blocked;
    r.blockStart = r.clock;
    r.acqPending = acq_pending;
}

SimStats
Machine::run(const std::vector<const TraceStream *> &traces,
             obs::Sampler *sampler, obs::Timeline *timeline)
{
    return run(traces, EngineConfig::seq(), sampler, timeline);
}

SimStats
Machine::run(const std::vector<const TraceStream *> &traces,
             const EngineConfig &engine, obs::Sampler *sampler,
             obs::Timeline *timeline)
{
    if (traces.size() > cfg_.nprocs)
        throw std::invalid_argument("more traces than processors");

    runs_.clear();
    runs_.resize(cfg_.nprocs);
    for (ProcRun &r : runs_)
        r.stats.levels = static_cast<std::uint8_t>(cfg_.numLevels());
    for (std::size_t i = 0; i < traces.size(); ++i)
        runs_[i].entries = &traces[i]->entries();

    locks_.reset();
    dir_.resetControllers();
    for (auto &n : nodes_)
        n->wb.reset();

    // Resolve page homes before either engine starts: the flat table is
    // immutable for the whole run, so the parallel engine's phase-A
    // workers read it without synchronization, and first-touch claims
    // (a pure function of the traces) are engine-invariant.
    placement_->beginRun(traces);

    sampler_ = sampler;
    timeline_ = timeline;
    holdStart_.clear();
    if (sampler_)
        sampler_->beginRun(traces.size());
    if (timeline_)
        timeline_->beginRun();
    if (fault_)
        fault_->beginRun();

    try {
        if (engine.kind == EngineKind::Seq) {
            runSeq(traces.size());
        } else {
            ParEngine par(*this, engine);
            par.run(traces.size());
        }
    } catch (...) {
        // Never leave dangling observer pointers behind an unwinding
        // run (SimError from a simulated deadlock).
        sampler_ = nullptr;
        timeline_ = nullptr;
        throw;
    }

    if (checker_)
        checker_->onRunEnd(*this);

    SimStats out;
    out.procs.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i)
        out.procs.push_back(runs_[i].stats);

    if (sampler_)
        sampler_->finishRun(out.executionTime(),
                            statsSnapshot(traces.size()));
    sampler_ = nullptr;
    timeline_ = nullptr;
    return out;
}

void
Machine::runSeq(std::size_t nrun)
{
    for (;;) {
        ProcId best = cfg_.nprocs;
        for (ProcId p = 0; p < cfg_.nprocs; ++p) {
            ProcRun &r = runs_[p];
            if (r.done() || r.blocked)
                continue;
            if (best == cfg_.nprocs || r.clock < runs_[best].clock)
                best = p;
        }
        if (best == cfg_.nprocs) {
            for (ProcId p = 0; p < cfg_.nprocs; ++p)
                if (!runs_[p].done())
                    throwDeadlock("seq");
            break;
        }
        // The chosen processor holds the minimum runnable clock: once it
        // crosses an epoch boundary, every processor has.
        if (sampler_ && sampler_->due(runs_[best].clock))
            sampler_->sample(runs_[best].clock, statsSnapshot(nrun));
        step(best);
    }
}

void
Machine::throwDeadlock(const char *engine) const
{
    obs::Json dump = obs::Json::object();
    dump["error"] = "deadlock";
    dump["engine"] = engine;
    obs::Json procs = obs::Json::array();
    for (ProcId p = 0; p < cfg_.nprocs; ++p) {
        const ProcRun &r = runs_[p];
        obs::Json pj = obs::Json::object();
        pj["proc"] = p;
        pj["clock"] = r.clock;
        pj["pos"] = r.pos;
        pj["entries"] = r.entries ? r.entries->size() : 0;
        pj["done"] = r.done();
        pj["blocked"] = r.blocked;
        if (r.blocked)
            pj["block_start"] = r.blockStart;
        pj["acq_pending"] = r.acqPending;
        if (!r.done()) {
            const TraceEntry &e = (*r.entries)[r.pos];
            obs::Json pending = obs::Json::object();
            const char *op = "?";
            switch (e.op) {
              case Op::Read: op = "read"; break;
              case Op::Write: op = "write"; break;
              case Op::Busy: op = "busy"; break;
              case Op::LockAcq: op = "lock_acq"; break;
              case Op::LockRel: op = "lock_rel"; break;
            }
            pending["op"] = op;
            pending["addr"] = e.addr;
            pending["class"] = std::string(dataClassName(e.cls));
            pj["pending"] = std::move(pending);
        }
        procs.push(std::move(pj));
    }
    dump["procs"] = std::move(procs);
    obs::Json locks = obs::Json::array();
    for (const LockTable::Info &info : locks_.snapshot()) {
        obs::Json lj = obs::Json::object();
        lj["word"] = info.word;
        lj["held"] = info.held;
        if (info.held)
            lj["holder"] = info.holder;
        obs::Json waiters = obs::Json::array();
        for (ProcId w : info.waiters)
            waiters.push(w);
        lj["waiters"] = std::move(waiters);
        locks.push(std::move(lj));
    }
    dump["locks"] = std::move(locks);
    throw SimError(std::string("simulated deadlock (") + engine +
                       " engine): every live processor is blocked on a "
                       "metalock",
                   std::move(dump));
}

void
Machine::registerStats(obs::Registry &reg, const std::string &prefix) const
{
    for (ProcId p = 0; p < cfg_.nprocs; ++p) {
        const std::string base =
            obs::metricName(prefix, "proc" + std::to_string(p));
        auto proc = [&](const char *leaf, auto getter) {
            reg.addCounter(obs::metricName(base, leaf), [this, p, getter] {
                return p < runs_.size() ? getter(runs_[p].stats)
                                        : std::uint64_t{0};
            });
        };
        // Per-run ProcStats views; flat snake_case leaves so they cannot
        // collide with the per-component lifetime counters below.
        proc("busy", [](const ProcStats &s) { return s.busy; });
        proc("mem_stall", [](const ProcStats &s) { return s.memStall; });
        proc("sync_stall", [](const ProcStats &s) { return s.syncStall; });
        proc("reads", [](const ProcStats &s) { return s.reads; });
        proc("writes", [](const ProcStats &s) { return s.writes; });
        proc("l1_hits", [](const ProcStats &s) { return s.l1Hits(); });
        proc("l2_accesses",
             [](const ProcStats &s) { return s.l2Accesses(); });
        proc("l2_hits", [](const ProcStats &s) { return s.l2Hits(); });
        // Deeper chains export their extra levels alongside; on the
        // two-level baseline none of these exist and the registry's
        // metric set is exactly the legacy one.
        for (std::size_t lvl = 2; lvl < cfg_.numLevels(); ++lvl) {
            proc((levelName(lvl) + "_accesses").c_str(),
                 [lvl](const ProcStats &s) {
                     return s.levelAccesses[lvl];
                 });
            proc((levelName(lvl) + "_hits").c_str(),
                 [lvl](const ProcStats &s) { return s.levelHits[lvl]; });
        }
        proc("wb_overflows",
             [](const ProcStats &s) { return s.wbOverflows; });
        proc("prefetch_issued",
             [](const ProcStats &s) { return s.prefetchesIssued; });
        proc("prefetch_useful",
             [](const ProcStats &s) { return s.prefetchesUseful; });

        // True/false-sharing split of the L2 coherence misses. The split
        // counters stay zero unless enableSharing is on; when it is,
        // miss.cohe.true + miss.cohe.false == miss.cohe exactly (the
        // memprof check mode asserts this).
        proc("miss.cohe", [](const ProcStats &s) {
            std::uint64_t n = 0;
            for (std::size_t c = 0; c < kNumDataClasses; ++c)
                n += s.cohMisses().of(static_cast<DataClass>(c),
                                      MissType::Cohe);
            return n;
        });
        proc("miss.cohe.true",
             [](const ProcStats &s) { return s.l2CoheTrue; });
        proc("miss.cohe.false",
             [](const ProcStats &s) { return s.l2CoheFalse; });

        // Demand directory transactions by structure group and hop
        // class: proc0.hops.data.local / .hop2 / .hop3 ... (the
        // placement layer's figure of merit; see sim/placement.hh).
        static const char *const hop_leaf[ProcStats::kNumHopClasses] = {
            "local", "hop2", "hop3"};
        for (std::size_t g = 0; g < kNumClassGroups; ++g) {
            for (std::size_t h = 0; h < ProcStats::kNumHopClasses; ++h) {
                std::string name = obs::metricName(
                    base,
                    "hops." +
                        lowered(classGroupName(
                            static_cast<ClassGroup>(g))) +
                        "." + hop_leaf[h]);
                reg.addCounter(name, [this, p, g, h] {
                    return p < runs_.size()
                               ? runs_[p].stats.hopsByGroup[g][h]
                               : std::uint64_t{0};
                });
            }
        }

        // One counter per miss-table cell and level:
        // proc0.l1.miss.cold.index ... proc0.l3.miss.cohe.data ...
        for (std::size_t lvl = 0; lvl < cfg_.numLevels(); ++lvl) {
            for (std::size_t t = 0; t < kNumMissTypes; ++t) {
                for (std::size_t c = 0; c < kNumDataClasses; ++c) {
                    auto mt = static_cast<MissType>(t);
                    auto cls = static_cast<DataClass>(c);
                    std::string name = obs::metricName(
                        base, levelName(lvl) + ".miss." +
                                  lowered(missTypeName(mt)) + "." +
                                  lowered(dataClassName(cls)));
                    reg.addCounter(name, [this, p, lvl, cls, mt] {
                        if (p >= runs_.size())
                            return std::uint64_t{0};
                        const ProcStats &s = runs_[p].stats;
                        return s.levelMisses[lvl].of(cls, mt);
                    });
                }
            }
        }

        for (std::size_t lvl = 0; lvl < cfg_.numLevels(); ++lvl)
            nodes_[p]->caches[lvl].registerStats(
                reg, base + "." + levelName(lvl));
        nodes_[p]->wb.registerStats(reg, base + ".wb");
    }
    dir_.registerStats(reg, obs::metricName(prefix, "dir"));
    locks_.registerStats(reg, obs::metricName(prefix, "locks"));
}

} // namespace sim
} // namespace dss
