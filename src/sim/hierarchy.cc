#include "sim/hierarchy.hh"

#include "sim/error.hh"
#include "sim/machine.hh"

namespace dss {
namespace sim {

namespace {

bool
isPow2(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Structured rejection: every validation failure names the machine
 * field it faulted on, so guardedMain's error JSON is actionable. */
[[noreturn]] void
reject(const std::string &what, const std::string &field,
       std::uint64_t value)
{
    obs::Json dump = obs::Json::object();
    dump["error"] = "invalid machine config";
    dump["field"] = field;
    dump["value"] = value;
    throw SimError("invalid machine config: " + what, std::move(dump));
}

} // namespace

std::string
levelName(std::size_t lvl)
{
    return "l" + std::to_string(lvl + 1);
}

LevelChain
paperLevels()
{
    LevelConfig l1;
    l1.sizeBytes = 4 * 1024;
    l1.lineBytes = 32;
    l1.assoc = 1;
    l1.hitCycles = 1; // == LatencyConfig::l1Hit; informational at level 0
    LevelConfig l2;
    l2.sizeBytes = 128 * 1024;
    l2.lineBytes = 64;
    l2.assoc = 2;
    l2.hitCycles = 16; // == the legacy LatencyConfig::l2Hit
    return {l1, l2};
}

void
validateLevel(const LevelConfig &level, const std::string &name)
{
    if (!isPow2(level.sizeBytes))
        reject(name + " size must be a power of two", name + ".sizeBytes",
               level.sizeBytes);
    if (!isPow2(level.lineBytes))
        reject(name + " line must be a power of two", name + ".lineBytes",
               level.lineBytes);
    if (level.lineBytes > level.sizeBytes)
        reject(name + " line is larger than the cache", name + ".lineBytes",
               level.lineBytes);
    if (level.assoc == 0)
        reject(name + " associativity must be at least 1", name + ".assoc",
               level.assoc);
    const std::size_t way_bytes = level.assoc * level.lineBytes;
    if (level.sizeBytes % way_bytes != 0)
        reject(name + " ways do not divide the cache size", name + ".assoc",
               level.assoc);
    if (!isPow2(level.sizeBytes / way_bytes))
        reject(name + " set count must be a power of two", name + ".assoc",
               level.assoc);
}

void
validateLevels(const LevelChain &levels)
{
    if (levels.size() < 2)
        reject("a hierarchy needs at least two levels", "levels",
               levels.size());
    if (levels.size() > kMaxCacheLevels)
        reject("a hierarchy has at most " +
                   std::to_string(kMaxCacheLevels) + " levels",
               "levels", levels.size());
    for (std::size_t i = 0; i < levels.size(); ++i)
        validateLevel(levels[i], levelName(i));
    for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
        const std::string name = levelName(i + 1);
        if (levels[i + 1].lineBytes % levels[i].lineBytes != 0)
            reject(levelName(i) + " line must divide the " + name +
                       " line (strict inclusion)",
                   name + ".lineBytes", levels[i + 1].lineBytes);
        if (levels[i + 1].sizeBytes < levels[i].sizeBytes)
            reject(name + " is smaller than " + levelName(i),
                   name + ".sizeBytes", levels[i + 1].sizeBytes);
        if (i >= 1 && levels[i + 1].hitCycles <= levels[i].hitCycles)
            reject(name + " hit latency must exceed " + levelName(i) +
                       "'s",
                   name + ".hitCycles", levels[i + 1].hitCycles);
    }
    for (std::size_t i = 0; i + 1 < levels.size(); ++i)
        if (levels[i].shared)
            reject("only the last level may be shared",
                   levelName(i) + ".shared", 1);
}

void
validateMachineConfig(const MachineConfig &cfg)
{
    if (cfg.nprocs == 0 || cfg.nprocs > 64)
        reject("processor count must be 1..64 (directory sharer mask)",
               "nprocs", cfg.nprocs);
    validateLevels(cfg.levels);
    if (!isPow2(cfg.pageBytes))
        reject("page size must be a power of two", "pageBytes",
               cfg.pageBytes);
    if (cfg.pageBytes < cfg.levels.back().lineBytes)
        reject("page smaller than the coherence granularity", "pageBytes",
               cfg.pageBytes);
    if (cfg.writeBufferEntries == 0)
        reject("write buffer needs at least one entry",
               "writeBufferEntries", cfg.writeBufferEntries);
    const LatencyConfig &lat = cfg.lat;
    if (lat.l1Hit >= cfg.levels[1].hitCycles)
        reject("l1 hit latency must be below the l2 hit latency",
               "latency.l1Hit", lat.l1Hit);
    if (cfg.levels.back().hitCycles >= lat.localMem)
        reject("last-level hit latency must be below local memory",
               levelName(cfg.levels.size() - 1) + ".hitCycles",
               cfg.levels.back().hitCycles);
    if (lat.localMem > lat.remote2Hop || lat.remote2Hop > lat.remote3Hop)
        reject("memory latencies must be monotone "
               "(local <= 2-hop <= 3-hop)",
               "latency.localMem", lat.localMem);
    if (lat.memBytesPerCycle == 0 || lat.ctrlBytesPerCycle == 0)
        reject("transfer rates must be nonzero",
               "latency.memBytesPerCycle", lat.memBytesPerCycle);
}

} // namespace sim
} // namespace dss
