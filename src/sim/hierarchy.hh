/**
 * @file
 * Declarative N-level cache hierarchy: the ordered level chain a
 * MachineConfig is built from, plus its validation rules.
 *
 * A machine's memory side is a chain of LevelConfigs, index 0 nearest the
 * processor. Level 0 is the write-through, no-write-allocate primary
 * cache; every deeper level allocates on demand; the *last* level is the
 * coherent level — the one the directory tracks, the one that may hold
 * dirty data, and the one whose line size sets the coherence granularity.
 * Intermediate levels (chains of three or more) hold clean copies only:
 * strict inclusion (every line resident at level j is resident at level
 * j+1) means an intermediate victim needs no writeback, because the level
 * below still holds the line. With exactly two levels the chain reduces
 * term-for-term to the paper's L1/L2 machine — same accesses, same fills,
 * same latencies — which is why the `paper1997` spec is bit-identical to
 * the legacy hard-coded pair (DESIGN.md §17 gives the argument).
 *
 * Validation is centralized here (validateMachineConfig): geometry and
 * latency mistakes — non-power-of-two sizes, a line larger than its
 * cache, non-nested line sizes, non-monotonic hit latencies — throw a
 * structured SimError naming the offending level instead of silently
 * mangling set indices.
 */

#ifndef DSS_SIM_HIERARCHY_HH
#define DSS_SIM_HIERARCHY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/addr.hh"
#include "sim/cache.hh"

namespace dss {
namespace sim {

struct MachineConfig;

/** Most levels a chain may declare ("l1" through "l4"). */
constexpr std::size_t kMaxCacheLevels = 4;

/**
 * One level of the chain: cache geometry plus the round-trip hit latency
 * charged when a read is satisfied at this level. The level-0 hit cost
 * lives in LatencyConfig::l1Hit (it is the no-stall baseline, not a
 * stall), so hitCycles is meaningful for levels >= 1 only.
 */
struct LevelConfig : CacheConfig
{
    /** Round trip to this level on a hit (levels >= 1). Quoted for a
     * 32 B level-0 line; longer level-0 lines add their extra transfer
     * time, exactly like the legacy L2 hit latency. */
    Cycles hitCycles = 16;

    /**
     * Marks a last-level cache shared by the processors of one node
     * rather than private to one processor. With the paper's one
     * processor per node the two are operationally identical, so this is
     * declarative topology (kept through JSON round trips and reports);
     * only the last level may set it.
     */
    bool shared = false;
};

/** The ordered level chain, index 0 nearest the processor. */
using LevelChain = std::vector<LevelConfig>;

/** Registry/JSON name of level @p lvl: "l1", "l2", "l3", "l4". */
std::string levelName(std::size_t lvl);

/** The paper's baseline chain: 4 KB/32 B direct-mapped write-through L1
 * over a 128 KB/64 B 2-way write-back L2 with a 16-cycle round trip. */
LevelChain paperLevels();

/**
 * Validate one level's geometry in isolation: power-of-two size and line
 * size, line no larger than the cache, associativity dividing the line
 * count into a power-of-two number of sets. Throws SimError with a
 * structured dump naming @p name.
 */
void validateLevel(const LevelConfig &level, const std::string &name);

/**
 * Validate a whole chain: 2..kMaxCacheLevels levels, each level valid in
 * isolation, line sizes nested (each level's line divides the next
 * level's), capacities non-decreasing, hit latencies strictly increasing,
 * `shared` only on the last level. Throws SimError.
 */
void validateLevels(const LevelChain &levels);

/**
 * Validate a full machine description: its level chain, processor count
 * (1..64 — the directory's sharer bitmask is 64 bits wide), page size,
 * and latency monotonicity (l1Hit < level hit latencies < local memory
 * <= 2-hop <= 3-hop). Machine's constructor calls this, so no simulation
 * ever starts on a malformed configuration. Throws SimError.
 */
void validateMachineConfig(const MachineConfig &cfg);

} // namespace sim
} // namespace dss

#endif // DSS_SIM_HIERARCHY_HH
