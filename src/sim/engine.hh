/**
 * @file
 * Simulation engine selection.
 *
 * The Machine can replay a trace set with two engines that share all of
 * the memory-system model code (caches, directory, write buffers, locks)
 * but schedule the per-processor pipelines differently:
 *
 *  - Seq: the reference event-driven engine. One host thread repeatedly
 *    steps the runnable processor with the minimum local clock (ties to
 *    the lowest processor id). Every coherence, contention and lock
 *    interaction is resolved in exact simulated-time order. This is the
 *    engine all paper figures are produced with.
 *
 *  - Par: the barrier-synchronized epoch engine. Simulated time is split
 *    into windows of `windowCycles`; within a window each processor's
 *    pipeline (CPU + L1 + write buffer + private L2 lookups) advances on
 *    its own host thread against a frozen view of the shared state, and
 *    every shared-state transaction (directory updates, home-controller
 *    occupancy, metalock operations) is funneled through per-processor
 *    mailboxes that are drained at the window barrier in a deterministic
 *    order: sorted by simulated cycle, then processor id, then per-
 *    processor program order. The result is bit-identical for any host
 *    thread count (including 1) — see DESIGN.md for the determinism
 *    argument — and approximates the Seq interleaving with an error
 *    bounded by the window length.
 */

#ifndef DSS_SIM_ENGINE_HH
#define DSS_SIM_ENGINE_HH

#include <optional>
#include <string_view>

#include "sim/addr.hh"

namespace dss {
namespace sim {

enum class EngineKind : std::uint8_t { Seq, Par };

constexpr std::string_view
engineKindName(EngineKind k)
{
    return k == EngineKind::Seq ? "seq" : "par";
}

/** Parse "seq" / "par"; nullopt on anything else. */
std::optional<EngineKind> parseEngineKind(std::string_view name);

/** How Machine::run schedules the per-processor pipelines. */
struct EngineConfig
{
    EngineKind kind = EngineKind::Seq;

    /**
     * Par only: host worker threads. 0 means one thread per simulated
     * processor, capped at the host's hardware concurrency. The simulated
     * results are independent of this value by construction.
     */
    unsigned threads = 0;

    /** Par only: barrier window length in simulated cycles. */
    Cycles windowCycles = 8192;

    static EngineConfig
    seq()
    {
        return EngineConfig{};
    }

    static EngineConfig
    par(unsigned threads = 0, Cycles window = 8192)
    {
        EngineConfig c;
        c.kind = EngineKind::Par;
        c.threads = threads;
        c.windowCycles = window;
        return c;
    }
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_ENGINE_HH
