/**
 * @file
 * Memory-reference traces.
 *
 * The DBMS engine executes for real against MemArena storage and emits one
 * TraceEntry per load/store to traced structures, plus Busy entries for
 * compute cycles and LockAcq/LockRel markers for metalock operations.
 *
 * Because the TPC-D queries studied are read-only, each processor's
 * reference stream is independent of the multiprocessor interleaving (the
 * paper makes the same observation); only metalock *timing* is
 * interleaving-dependent and it is replayed dynamically by the Machine.
 * This lets us capture per-processor streams once and reuse them across
 * every architecture configuration (line-size sweeps, cache-size sweeps,
 * prefetching, warm starts).
 */

#ifndef DSS_SIM_TRACE_HH
#define DSS_SIM_TRACE_HH

#include <cstdint>
#include <vector>

#include "sim/addr.hh"

namespace dss {
namespace sim {

/** Kind of trace event. */
enum class Op : std::uint8_t {
    Read,    ///< Data load of `size` bytes at `addr`
    Write,   ///< Data store of `size` bytes at `addr`
    Busy,    ///< `extra` cycles of pure compute
    LockAcq, ///< Metalock acquire on the lock word at `addr`
    LockRel  ///< Metalock release on the lock word at `addr`
};

/** One trace event. Kept at 16 bytes; streams run to millions of entries. */
struct TraceEntry
{
    Addr addr;          ///< Target address (unused for Busy)
    std::uint32_t extra; ///< Busy cycles (Busy) / reserved otherwise
    Op op;
    DataClass cls;      ///< Software structure tag (captured at trace time)
    std::uint8_t size;  ///< Access width in bytes

    static TraceEntry
    read(Addr a, DataClass c, std::uint8_t sz)
    {
        return {a, 0, Op::Read, c, sz};
    }

    static TraceEntry
    write(Addr a, DataClass c, std::uint8_t sz)
    {
        return {a, 0, Op::Write, c, sz};
    }

    static TraceEntry
    busy(std::uint32_t cycles)
    {
        return {0, cycles, Op::Busy, DataClass::Priv, 0};
    }

    static TraceEntry
    lockAcq(Addr a, DataClass c)
    {
        return {a, 0, Op::LockAcq, c, 8};
    }

    static TraceEntry
    lockRel(Addr a, DataClass c)
    {
        return {a, 0, Op::LockRel, c, 8};
    }
};

static_assert(sizeof(TraceEntry) == 16, "keep trace entries compact");

/** Sink interface the DBMS writes trace events into. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEntry &e) = 0;
};

/** Sink that drops everything (run the engine without tracing). */
class NullSink final : public TraceSink
{
  public:
    void record(const TraceEntry &) override {}
};

/**
 * In-memory per-processor trace stream. Consecutive Busy entries are
 * coalesced on the fly to keep streams compact.
 */
class TraceStream final : public TraceSink
{
  public:
    void
    record(const TraceEntry &e) override
    {
        if (e.op == Op::Busy) {
            if (!entries_.empty() && entries_.back().op == Op::Busy) {
                entries_.back().extra += e.extra;
                return;
            }
            if (e.extra == 0)
                return;
        }
        entries_.push_back(e);
    }

    const std::vector<TraceEntry> &entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }

    /** Summary counters, useful for tests and sanity checks. */
    struct Counts
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t busyCycles = 0;
        std::uint64_t lockAcqs = 0;
        std::uint64_t readsByClass[kNumDataClasses] = {};
        std::uint64_t writesByClass[kNumDataClasses] = {};
    };

    Counts counts() const;

    /**
     * FNV-1a hash over every entry's fields, in order. Two streams hash
     * equal iff they replay identically, so the trace cache can verify
     * that a cached stream is byte-equivalent to a fresh capture without
     * storing both (content addressing).
     */
    std::uint64_t contentHash() const;

  private:
    std::vector<TraceEntry> entries_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_TRACE_HH
