#include "sim/spinlock_model.hh"

#include <algorithm>
#include <cassert>

#include "obs/registry.hh"

namespace dss {
namespace sim {

bool
LockTable::tryAcquire(Addr word, ProcId proc)
{
    State &s = locks_[word];
    if (s.held)
        return false;
    s.held = true;
    s.holderProc = proc;
    ++ctrs_.acquires;
    return true;
}

void
LockTable::addWaiter(Addr word, ProcId proc)
{
    State &s = locks_[word];
    assert(s.held && "waiting on a free lock");
    s.queue.push_back(proc);
    ++ctrs_.waits;
}

ProcId
LockTable::release(Addr word, ProcId proc)
{
    State &s = locks_[word];
    assert(s.held && s.holderProc == proc && "release by non-holder");
    (void)proc;
    ++ctrs_.releases;
    if (s.queue.empty()) {
        s.held = false;
        return kNoWaiter;
    }
    ProcId next = s.queue.front();
    s.queue.pop_front();
    s.holderProc = next; // hand-off: still held, new owner
    ++ctrs_.handoffs;
    return next;
}

bool
LockTable::isHeld(Addr word) const
{
    auto it = locks_.find(word);
    return it != locks_.end() && it->second.held;
}

ProcId
LockTable::holder(Addr word) const
{
    auto it = locks_.find(word);
    assert(it != locks_.end() && it->second.held);
    return it->second.holderProc;
}

std::size_t
LockTable::waiters(Addr word) const
{
    auto it = locks_.find(word);
    return it == locks_.end() ? 0 : it->second.queue.size();
}

std::vector<LockTable::Info>
LockTable::snapshot() const
{
    std::vector<Info> out;
    out.reserve(locks_.size());
    for (const auto &[word, s] : locks_)
        out.push_back({word, s.held, s.holderProc, s.queue});
    std::sort(out.begin(), out.end(),
              [](const Info &a, const Info &b) { return a.word < b.word; });
    return out;
}

void
LockTable::corruptDropHolderForTest(Addr word)
{
    locks_[word].held = false;
}

void
LockTable::registerStats(obs::Registry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(obs::metricName(prefix, "acquires"),
                   [this] { return ctrs_.acquires; });
    reg.addCounter(obs::metricName(prefix, "waits"),
                   [this] { return ctrs_.waits; });
    reg.addCounter(obs::metricName(prefix, "releases"),
                   [this] { return ctrs_.releases; });
    reg.addCounter(obs::metricName(prefix, "handoffs"),
                   [this] { return ctrs_.handoffs; });
}

} // namespace sim
} // namespace dss
