#include "sim/spinlock_model.hh"

#include <cassert>

namespace dss {
namespace sim {

bool
LockTable::tryAcquire(Addr word, ProcId proc)
{
    State &s = locks_[word];
    if (s.held)
        return false;
    s.held = true;
    s.holderProc = proc;
    return true;
}

void
LockTable::addWaiter(Addr word, ProcId proc)
{
    State &s = locks_[word];
    assert(s.held && "waiting on a free lock");
    s.queue.push_back(proc);
}

ProcId
LockTable::release(Addr word, ProcId proc)
{
    State &s = locks_[word];
    assert(s.held && s.holderProc == proc && "release by non-holder");
    (void)proc;
    if (s.queue.empty()) {
        s.held = false;
        return kNoWaiter;
    }
    ProcId next = s.queue.front();
    s.queue.pop_front();
    s.holderProc = next; // hand-off: still held, new owner
    return next;
}

bool
LockTable::isHeld(Addr word) const
{
    auto it = locks_.find(word);
    return it != locks_.end() && it->second.held;
}

ProcId
LockTable::holder(Addr word) const
{
    auto it = locks_.find(word);
    assert(it != locks_.end() && it->second.held);
    return it->second.holderProc;
}

std::size_t
LockTable::waiters(Addr word) const
{
    auto it = locks_.find(word);
    return it == locks_.end() ? 0 : it->second.queue.size();
}

} // namespace sim
} // namespace dss
