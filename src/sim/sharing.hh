/**
 * @file
 * Word-granular sharing tracker: true- vs. false-sharing classification
 * of coherence misses (Torrellas/Lam/Hennessy style).
 *
 * For every cache line the tracker keeps, per processor, a bitmask of the
 * 8-byte words that remote writers have dirtied since that processor last
 * held a valid copy ("stale words"). When a coherence miss occurs, the
 * missing access is *true sharing* if it touches at least one stale word
 * (the processor actually consumes data a remote writer produced) and
 * *false sharing* otherwise (it only shares residence in the line with the
 * remotely-written words).
 *
 * Determinism: the masks are mutated exclusively by the Machine's
 * serialized shared-state operators (applyStoreDir / applyReadFillDir /
 * applyPrefetchShareDir), which the sequential engine calls in replay
 * order and the parallel engine calls in the totally-ordered phase-B
 * barrier. Phase-A readers observe masks frozen at the last barrier —
 * exactly the same view they have of the directory — so classification is
 * bit-identical across engines' own replays and across thread counts.
 *
 * Cost: one unordered_map entry (nprocs x 8 bytes) per line that has ever
 * been written while shared. The tracker is only instantiated when the
 * profiler is enabled (Machine::enableSharing), so the disabled hot path
 * pays a single null-pointer test inside the (already rare) miss branches.
 */

#ifndef DSS_SIM_SHARING_HH
#define DSS_SIM_SHARING_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "sim/addr.hh"

namespace dss {
namespace sim {

/** Bitmask of 8-byte words inside one cache line (supports <= 512 B). */
using WordMask = std::uint64_t;

/** Mask of the words an access [addr, addr+size) touches in its line. */
inline WordMask
wordMaskOf(Addr addr, unsigned size, Addr line_addr, std::size_t line_bytes)
{
    const std::size_t first = (addr - line_addr) / 8;
    Addr end = addr + (size ? size : 1) - 1;
    const Addr line_end = line_addr + line_bytes - 1;
    if (end > line_end)
        end = line_end; // accesses never straddle lines in practice
    const std::size_t last = (end - line_addr) / 8;
    WordMask m = 0;
    for (std::size_t w = first; w <= last; ++w)
        m |= WordMask{1} << w;
    return m;
}

class SharingTracker
{
  public:
    static constexpr std::size_t kMaxProcs = 64;

    explicit SharingTracker(unsigned nprocs) : nprocs_(nprocs) {}

    /**
     * A store by @p p dirtied @p wmask words of @p line: those words go
     * stale for every other processor; p itself now holds fresh data.
     * Serialized (phase B / sequential replay) only.
     */
    void
    recordStore(ProcId p, Addr line, WordMask wmask)
    {
        auto &masks = lines_[line];
        for (unsigned q = 0; q < nprocs_; ++q)
            masks[q] |= wmask;
        masks[p] = 0;
    }

    /**
     * Processor @p p (re)obtained a valid copy of @p line (read fill,
     * prefetch share, or write allocate): nothing is stale for it anymore.
     * Serialized (phase B / sequential replay) only.
     */
    void
    recordFill(ProcId p, Addr line)
    {
        auto it = lines_.find(line);
        if (it != lines_.end())
            it->second[p] = 0;
    }

    /**
     * Would a coherence miss by @p p on words @p wmask of @p line be true
     * sharing? Safe from phase A: between barriers the map is frozen.
     */
    bool
    isTrueSharing(ProcId p, Addr line, WordMask wmask) const
    {
        auto it = lines_.find(line);
        if (it == lines_.end())
            return false;
        return (it->second[p] & wmask) != 0;
    }

    void
    reset()
    {
        lines_.clear();
    }

    std::size_t trackedLines() const { return lines_.size(); }

  private:
    unsigned nprocs_;
    std::unordered_map<Addr, std::array<WordMask, kMaxProcs>> lines_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_SHARING_HH
