#include "sim/cache.hh"

#include <cassert>
#include <stdexcept>

#include "obs/registry.hh"

namespace dss {
namespace sim {

namespace {

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg), lineBytes_(cfg.lineBytes)
{
    if (!isPow2(cfg.lineBytes) || !isPow2(cfg.sizeBytes))
        throw std::invalid_argument("cache size/line must be powers of two");
    if (cfg.assoc == 0 || cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) != 0)
        throw std::invalid_argument("cache size not divisible by way size");
    numSets_ = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    if (!isPow2(numSets_))
        throw std::invalid_argument("number of sets must be a power of two");
    lines_.resize(numSets_ * cfg.assoc);
}

bool
Cache::isDirty(Addr addr) const
{
    const Line *l = find(addr);
    return l && l->dirty;
}

MissType
Cache::classifyMiss(Addr addr) const
{
    Addr la = lineAddrOf(addr);
    if (!everLoaded_.count(la))
        return MissType::Cold;
    if (invalRemoved_.count(la))
        return MissType::Cohe;
    return MissType::Conf;
}

Cache::Victim
Cache::fill(Addr addr, bool dirty)
{
    Addr la = lineAddrOf(addr);
    assert(!contains(la) && "fill of a resident line");
    Line *set = &lines_[setOf(la) * cfg_.assoc];
    Line *victim = &set[0];
    for (std::size_t w = 1; w < cfg_.assoc; ++w) {
        if (!victim->valid)
            break;
        if (!set[w].valid || set[w].lru < victim->lru)
            victim = &set[w];
    }
    ++ctrs_.fills;
    Victim out;
    if (victim->valid) {
        ++ctrs_.evictions;
        out.valid = true;
        out.dirty = victim->dirty;
        out.lineAddr = victim->tag;
    }
    victim->tag = la;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lru = ++stamp_;
    everLoaded_.insert(la);
    invalRemoved_.erase(la);
    return out;
}

bool
Cache::invalidate(Addr addr, bool coherence, bool *was_dirty)
{
    Line *l = find(addr);
    if (!l)
        return false;
    if (was_dirty)
        *was_dirty = l->dirty;
    l->valid = false;
    l->dirty = false;
    ++ctrs_.invalidations;
    if (coherence) {
        ++ctrs_.cohInvalidations;
        invalRemoved_.insert(lineAddrOf(addr));
    }
    return true;
}

void
Cache::clearCoherenceMark(Addr addr)
{
    invalRemoved_.erase(lineAddrOf(addr));
}

void
Cache::markDirty(Addr addr)
{
    Line *l = find(addr);
    assert(l && "markDirty on non-resident line");
    l->dirty = true;
}

void
Cache::markClean(Addr addr)
{
    Line *l = find(addr);
    assert(l && "markClean on non-resident line");
    l->dirty = false;
}

void
Cache::reset()
{
    for (Line &l : lines_)
        l = Line{};
    everLoaded_.clear();
    invalRemoved_.clear();
    stamp_ = 0;
}

void
Cache::registerStats(obs::Registry &reg, const std::string &prefix) const
{
    auto counter = [&](const char *leaf, const std::uint64_t Counters::*f) {
        reg.addCounter(obs::metricName(prefix, leaf),
                       [this, f] { return ctrs_.*f; });
    };
    counter("lookups", &Counters::lookups);
    counter("hits", &Counters::hits);
    counter("fills", &Counters::fills);
    counter("evictions", &Counters::evictions);
    counter("invalidations", &Counters::invalidations);
    counter("coh_invalidations", &Counters::cohInvalidations);
    reg.addGauge(obs::metricName(prefix, "hit_rate"), [this] {
        return ctrs_.lookups
                   ? static_cast<double>(ctrs_.hits) /
                         static_cast<double>(ctrs_.lookups)
                   : 0.0;
    });
}

std::vector<Addr>
Cache::residentLines() const
{
    std::vector<Addr> out;
    for (const Line &l : lines_) {
        if (l.valid)
            out.push_back(l.tag);
    }
    return out;
}

} // namespace sim
} // namespace dss
