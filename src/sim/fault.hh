/**
 * @file
 * Seeded, deterministic fault injection for the simulated machine.
 *
 * A FaultPlan perturbs the memory system to exercise its degraded paths:
 *
 *  - LatencySpike:  extra directory/remote-hop latency on a read
 *  - Eviction:      forced eviction of the accessed L2 line (plus its L1
 *                   sublines) before a read, as if a conflict evicted it
 *  - WbStall:       a write-buffer stall storm charged to a store
 *  - LockPreempt:   the holder of a metalock is "preempted" right before
 *                   its release, stretching the hold time (the classic
 *                   spinlock pathology the paper's MSync time measures)
 *  - QueryAbort:    a DB-level abort of a whole query at trace-generation
 *                   time, retried by the harness with bounded backoff
 *  - NodeFailure:   a whole processor goes out of service for an
 *                   interval. Unlike the per-access kinds this one is
 *                   consumed by the *stream scheduler* (src/sched/), not
 *                   the machine: nodeOutage() exposes each processor's
 *                   seeded outage windows as a pure function of
 *                   (seed, proc, outage index), and the scheduler aborts
 *                   and migrates the queries caught inside them
 *
 * Determinism contract: every decision is a pure function of
 * (seed, run index, processor, per-processor trace position, fault kind)
 * — never of the global interleaving. Both engines visit each processor's
 * Read/Write/LockRel trace positions exactly once per run, so the same
 * seed produces a bit-identical fault schedule under --engine seq and
 * --engine par at any host thread count. (LockAcq entries re-execute on
 * wake-up and are therefore never fault points.)
 *
 * Thread safety: during the parallel engine's phase A the worker for
 * processor p only touches the plan's slot p; aggregation (counters(),
 * schedule(), toJson()) is only valid outside a run.
 */

#ifndef DSS_SIM_FAULT_HH
#define DSS_SIM_FAULT_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/addr.hh"

namespace dss {
namespace obs {
class Registry;
} // namespace obs

namespace sim {

enum class FaultKind : std::uint8_t {
    LatencySpike,
    Eviction,
    WbStall,
    LockPreempt,
    QueryAbort,
    NodeFailure,
};
constexpr std::size_t kNumFaultKinds = 6;

std::string_view faultKindName(FaultKind k);

struct FaultConfig
{
    std::uint64_t seed = 0;
    /** Per-opportunity probability of each enabled kind, in [0, 1]. */
    double rate = 0.0;

    static constexpr unsigned bitOf(FaultKind k)
    {
        return 1u << static_cast<unsigned>(k);
    }
    static constexpr unsigned kAllKinds = (1u << kNumFaultKinds) - 1;
    /** Which kinds may fire (bitOf() mask). */
    unsigned kinds = kAllKinds;

    Cycles spikeCycles = 200;    ///< extra read latency per LatencySpike
    Cycles wbStallCycles = 64;   ///< stall charged per WbStall
    Cycles preemptCycles = 500;  ///< hold stretch per LockPreempt
    /** Injected aborts per aborting query; must stay below the harness
     * retry budget so every aborted query eventually succeeds. */
    unsigned maxAbortsPerQuery = 3;

    /** NodeFailure: how long a failed processor stays down. 0 means the
     * failure is permanent — the processor never comes back, and only
     * outage index 0 exists. */
    Cycles nodeDownCycles = 1000000;
    /** NodeFailure: mean up-time between one processor's outages at
     * rate 1.0; the effective mean scales as nodeMeanUpCycles / rate, so
     * higher fault rates fail nodes more often. */
    Cycles nodeMeanUpCycles = 8000000;

    bool enabled(FaultKind k) const { return (kinds & bitOf(k)) != 0; }
};

class FaultPlan
{
  public:
    /** Processors above this count never fault (sharers masks are 8-bit
     * anyway, so no machine is wider). */
    static constexpr unsigned kMaxProcs = 8;

    explicit FaultPlan(const FaultConfig &cfg) : cfg_(cfg) {}

    const FaultConfig &config() const { return cfg_; }

    /** Called by Machine::run at run start: decisions mix in the run
     * index so chained runs (Fig 12 sequences) see distinct schedules. */
    void beginRun() { ++runIndex_; }

    // ----- decision points (record the event when they fire) -----

    /** Extra latency charged to the read at trace position @p pos. */
    Cycles readDelay(ProcId p, std::uint64_t pos);

    /** True if the line accessed at @p pos must be force-evicted first. */
    bool evictAt(ProcId p, std::uint64_t pos);

    /** Extra write-buffer stall charged to the store at @p pos. */
    Cycles wbStall(ProcId p, std::uint64_t pos);

    /** Hold-time stretch applied before the release at @p pos. */
    Cycles holdStretch(ProcId p, std::uint64_t pos);

    /**
     * Schedule the next query: decides how many injected aborts (0 when
     * the QueryAbort kind does not fire) the query suffers before it is
     * allowed to complete. Called once per runCold/runSequence run.
     */
    void scheduleQuery();

    /** Consume one scheduled abort; false once the query may complete. */
    bool abortScheduled();

    /** Retry bookkeeping from the harness backoff path. */
    void recordRetry(Cycles backoff);

    // ----- node outages (consumed by the stream scheduler) -----

    /** Sentinel end cycle of a permanent outage. */
    static constexpr Cycles kNever = ~Cycles{0};

    /** One seeded out-of-service window of a processor. */
    struct Outage
    {
        Cycles start = 0;
        Cycles end = kNever; ///< start + nodeDownCycles; kNever = forever
        bool permanent = false;
    };

    /**
     * Processor @p p's @p k-th outage window, or nullopt when the
     * NodeFailure kind is disabled (or the config is permanent-failure
     * and k > 0). Pure function of (seed, p, k): outage k starts after
     * k+1 exponential up-time gaps (mean nodeMeanUpCycles / rate) plus
     * the k earlier down intervals, so windows never overlap and both
     * engines at any host thread count see identical windows.
     */
    std::optional<Outage> nodeOutage(ProcId p, unsigned k) const;

    /** Count a fired node failure (an outage the scheduler actually hit)
     * into the log/counters; @p pos is the outage index, @p down its
     * length (0 when permanent). */
    void recordNodeFailure(ProcId p, std::uint64_t pos, Cycles down);

    // ----- aggregation (outside a run only) -----

    struct Event
    {
        FaultKind kind;
        ProcId proc;
        std::uint64_t run;
        std::uint64_t pos;
        Cycles cycles;

        bool operator==(const Event &o) const
        {
            return kind == o.kind && proc == o.proc && run == o.run &&
                   pos == o.pos && cycles == o.cycles;
        }
    };

    /** The full fired-fault schedule, processor-major, position order.
     * Bit-identical across engines and host thread counts. */
    std::vector<Event> schedule() const;

    struct Counters
    {
        std::array<std::uint64_t, kNumFaultKinds> byKind{};
        std::uint64_t injected = 0;      ///< total fired faults
        std::uint64_t aborts = 0;        ///< injected query aborts
        std::uint64_t retries = 0;       ///< harness retry attempts
        std::uint64_t backoffCycles = 0; ///< simulated backoff charged
    };

    Counters counters() const;

    /** Register "fault.*" counters into @p reg (live views). */
    void registerStats(obs::Registry &reg, const std::string &prefix) const;

    /** Config + counters + schedule digest for JSON reports. */
    obs::Json toJson() const;

  private:
    bool fires(FaultKind k, ProcId p, std::uint64_t pos) const;
    void record(FaultKind k, ProcId p, std::uint64_t pos, Cycles c);

    struct PerProc
    {
        std::vector<Event> log;
    };

    FaultConfig cfg_;
    std::uint64_t runIndex_ = 0;
    std::uint64_t queryIndex_ = 0;
    unsigned abortsRemaining_ = 0;
    std::uint64_t aborts_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t backoffCycles_ = 0;
    std::array<PerProc, kMaxProcs> perProc_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_FAULT_HH
