#include "sim/stats.hh"

#include <algorithm>

namespace dss {
namespace sim {

std::uint64_t
MissTable::byClass(DataClass c) const
{
    std::uint64_t n = 0;
    for (std::size_t t = 0; t < kNumMissTypes; ++t)
        n += count[static_cast<std::size_t>(c)][t];
    return n;
}

std::uint64_t
MissTable::byGroup(ClassGroup g) const
{
    std::uint64_t n = 0;
    for (std::size_t c = 0; c < kNumDataClasses; ++c) {
        if (groupOf(static_cast<DataClass>(c)) == g) {
            for (std::size_t t = 0; t < kNumMissTypes; ++t)
                n += count[c][t];
        }
    }
    return n;
}

std::uint64_t
MissTable::byGroupAndType(ClassGroup g, MissType t) const
{
    std::uint64_t n = 0;
    for (std::size_t c = 0; c < kNumDataClasses; ++c) {
        if (groupOf(static_cast<DataClass>(c)) == g)
            n += count[c][static_cast<std::size_t>(t)];
    }
    return n;
}

std::uint64_t
MissTable::total() const
{
    std::uint64_t n = 0;
    for (const auto &row : count)
        for (std::uint64_t v : row)
            n += v;
    return n;
}

MissTable &
MissTable::operator+=(const MissTable &o)
{
    for (std::size_t c = 0; c < kNumDataClasses; ++c)
        for (std::size_t t = 0; t < kNumMissTypes; ++t)
            count[c][t] += o.count[c][t];
    return *this;
}

MissTable &
MissTable::operator-=(const MissTable &o)
{
    for (std::size_t c = 0; c < kNumDataClasses; ++c)
        for (std::size_t t = 0; t < kNumMissTypes; ++t)
            count[c][t] -= o.count[c][t];
    return *this;
}

double
ProcStats::l1MissRate() const
{
    std::uint64_t m = l1Misses().total();
    std::uint64_t refs = reads + assumedHitReads;
    return refs ? static_cast<double>(m) / static_cast<double>(refs) : 0.0;
}

double
ProcStats::l2GlobalMissRate() const
{
    std::uint64_t m = l2Misses().total();
    std::uint64_t refs = reads + assumedHitReads;
    return refs ? static_cast<double>(m) / static_cast<double>(refs) : 0.0;
}

std::uint64_t
ProcStats::hopsOfClass(std::size_t hop) const
{
    std::uint64_t n = 0;
    for (std::size_t g = 0; g < kNumClassGroups; ++g)
        n += hopsByGroup[g][hop];
    return n;
}

std::uint64_t
ProcStats::hopsTotal() const
{
    std::uint64_t n = 0;
    for (std::size_t h = 0; h < kNumHopClasses; ++h)
        n += hopsOfClass(h);
    return n;
}

ProcStats &
ProcStats::operator+=(const ProcStats &o)
{
    busy += o.busy;
    memStall += o.memStall;
    syncStall += o.syncStall;
    for (std::size_t g = 0; g < kNumClassGroups; ++g)
        memStallByGroup[g] += o.memStallByGroup[g];
    for (std::size_t g = 0; g < kNumClassGroups; ++g)
        for (std::size_t h = 0; h < kNumHopClasses; ++h)
            hopsByGroup[g][h] += o.hopsByGroup[g][h];
    reads += o.reads;
    writes += o.writes;
    assumedHitReads += o.assumedHitReads;
    levels = std::max(levels, o.levels);
    for (std::size_t l = 0; l < kMaxCacheLevels; ++l) {
        levelHits[l] += o.levelHits[l];
        levelAccesses[l] += o.levelAccesses[l];
        levelMisses[l] += o.levelMisses[l];
    }
    wbOverflows += o.wbOverflows;
    prefetchesIssued += o.prefetchesIssued;
    prefetchesUseful += o.prefetchesUseful;
    l2CoheTrue += o.l2CoheTrue;
    l2CoheFalse += o.l2CoheFalse;
    return *this;
}

ProcStats &
ProcStats::operator-=(const ProcStats &o)
{
    busy -= o.busy;
    memStall -= o.memStall;
    syncStall -= o.syncStall;
    for (std::size_t g = 0; g < kNumClassGroups; ++g)
        memStallByGroup[g] -= o.memStallByGroup[g];
    for (std::size_t g = 0; g < kNumClassGroups; ++g)
        for (std::size_t h = 0; h < kNumHopClasses; ++h)
            hopsByGroup[g][h] -= o.hopsByGroup[g][h];
    reads -= o.reads;
    writes -= o.writes;
    assumedHitReads -= o.assumedHitReads;
    for (std::size_t l = 0; l < kMaxCacheLevels; ++l) {
        levelHits[l] -= o.levelHits[l];
        levelAccesses[l] -= o.levelAccesses[l];
        levelMisses[l] -= o.levelMisses[l];
    }
    wbOverflows -= o.wbOverflows;
    prefetchesIssued -= o.prefetchesIssued;
    prefetchesUseful -= o.prefetchesUseful;
    l2CoheTrue -= o.l2CoheTrue;
    l2CoheFalse -= o.l2CoheFalse;
    return *this;
}

ProcStats
SimStats::aggregate() const
{
    ProcStats out;
    for (const ProcStats &p : procs)
        out += p;
    return out;
}

Cycles
SimStats::executionTime() const
{
    Cycles t = 0;
    for (const ProcStats &p : procs)
        t = std::max(t, p.totalCycles());
    return t;
}

} // namespace sim
} // namespace dss
