#include "sim/write_buffer.hh"

#include <algorithm>

namespace dss {
namespace sim {

void
WriteBuffer::retireUpTo(Cycles now)
{
    while (!pending_.empty() && pending_.front().retireAt <= now)
        pending_.pop_front();
}

Cycles
WriteBuffer::push(Cycles now, Cycles drain_latency, Addr line_addr)
{
    retireUpTo(now);
    Cycles stall = 0;
    if (pending_.size() >= capacity_) {
        // Overflow: the processor waits for the oldest store to retire.
        stall = pending_.front().retireAt - now;
        now = pending_.front().retireAt;
        pending_.pop_front();
    }
    Cycles start = std::max(lastRetire_, now);
    Cycles retire = start + drain_latency;
    lastRetire_ = retire;
    pending_.push_back({retire, line_addr});
    return stall;
}

bool
WriteBuffer::containsLine(Addr line_addr, Cycles now)
{
    retireUpTo(now);
    for (const Pending &p : pending_) {
        if (p.lineAddr == line_addr)
            return true;
    }
    return false;
}

std::size_t
WriteBuffer::occupancy(Cycles now)
{
    retireUpTo(now);
    return pending_.size();
}

void
WriteBuffer::reset()
{
    pending_.clear();
    lastRetire_ = 0;
}

} // namespace sim
} // namespace dss
