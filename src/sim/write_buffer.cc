#include "sim/write_buffer.hh"

#include <algorithm>

#include "obs/registry.hh"

namespace dss {
namespace sim {

void
WriteBuffer::retireUpTo(Cycles now)
{
    while (!pending_.empty() && pending_.front().retireAt <= now)
        pending_.pop_front();
}

Cycles
WriteBuffer::push(Cycles now, Cycles drain_latency, Addr line_addr)
{
    retireUpTo(now);
    ++ctrs_.stores;
    Cycles stall = 0;
    if (pending_.size() >= capacity_) {
        // Overflow: the processor waits for the oldest store to retire.
        stall = pending_.front().retireAt - now;
        now = pending_.front().retireAt;
        pending_.pop_front();
        ++ctrs_.overflows;
        ctrs_.stallCycles += stall;
    }
    Cycles start = std::max(lastRetire_, now);
    Cycles retire = start + drain_latency;
    lastRetire_ = retire;
    pending_.push_back({retire, line_addr});
    ctrs_.maxOccupancy = std::max<std::uint64_t>(ctrs_.maxOccupancy,
                                                 pending_.size());
    return stall;
}

void
WriteBuffer::registerStats(obs::Registry &reg,
                           const std::string &prefix) const
{
    reg.addCounter(obs::metricName(prefix, "stores"),
                   [this] { return ctrs_.stores; });
    reg.addCounter(obs::metricName(prefix, "overflows"),
                   [this] { return ctrs_.overflows; });
    reg.addCounter(obs::metricName(prefix, "stall_cycles"),
                   [this] { return ctrs_.stallCycles; });
    reg.addCounter(obs::metricName(prefix, "max_occupancy"),
                   [this] { return ctrs_.maxOccupancy; });
}

bool
WriteBuffer::containsLine(Addr line_addr, Cycles now)
{
    retireUpTo(now);
    for (const Pending &p : pending_) {
        if (p.lineAddr == line_addr)
            return true;
    }
    return false;
}

std::size_t
WriteBuffer::occupancy(Cycles now)
{
    retireUpTo(now);
    return pending_.size();
}

bool
WriteBuffer::fifoOrdered() const
{
    for (std::size_t i = 1; i < pending_.size(); ++i)
        if (pending_[i].retireAt < pending_[i - 1].retireAt)
            return false;
    return true;
}

std::vector<Addr>
WriteBuffer::pendingLines() const
{
    std::vector<Addr> out;
    out.reserve(pending_.size());
    for (const Pending &p : pending_)
        out.push_back(p.lineAddr);
    return out;
}

void
WriteBuffer::retireOldest()
{
    if (!pending_.empty())
        pending_.pop_front();
}

void
WriteBuffer::corruptReorderForTest()
{
    if (pending_.size() >= 2 &&
        pending_[0].retireAt != pending_[1].retireAt)
        std::swap(pending_[0].retireAt, pending_[1].retireAt);
}

void
WriteBuffer::reset()
{
    pending_.clear();
    lastRetire_ = 0;
}

} // namespace sim
} // namespace dss
