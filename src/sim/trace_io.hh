/**
 * @file
 * Trace (de)serialization.
 *
 * The engine-side trace capture is fast, but users studying many machine
 * configurations may want to capture per-processor streams once and
 * re-simulate them elsewhere. The format is a small self-describing
 * binary container: a magic/version header, the stream count, then each
 * stream as an entry count followed by packed TraceEntry records.
 */

#ifndef DSS_SIM_TRACE_IO_HH
#define DSS_SIM_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace dss {
namespace sim {

/** Write @p streams to @p os. Throws std::runtime_error on I/O failure. */
void saveTraces(std::ostream &os, const std::vector<TraceStream> &streams);

/** Read streams previously written by saveTraces(). Throws on a bad
 * magic, version mismatch, truncation, or malformed entries. */
std::vector<TraceStream> loadTraces(std::istream &is);

/** Convenience file wrappers. */
void saveTracesFile(const std::string &path,
                    const std::vector<TraceStream> &streams);
std::vector<TraceStream> loadTracesFile(const std::string &path);

} // namespace sim
} // namespace dss

#endif // DSS_SIM_TRACE_IO_HH
