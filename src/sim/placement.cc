#include "sim/placement.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "sim/arena.hh"
#include "sim/trace.hh"

namespace dss {
namespace sim {

namespace {

/** log2 of a power of two, -1 otherwise. */
int
shiftOf(std::uint64_t v)
{
    if (v == 0 || (v & (v - 1)) != 0)
        return -1;
    int s = 0;
    while ((v >>= 1) != 0)
        ++s;
    return s;
}

} // namespace

const char *
placementKindName(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::Interleave: return "interleave";
      case PlacementKind::FirstTouch: return "first-touch";
      case PlacementKind::ClassAffinity: return "class-affinity";
      case PlacementKind::Profile: return "profile";
    }
    return "?";
}

std::optional<PlacementSpec>
PlacementSpec::parse(std::string_view text)
{
    PlacementSpec spec;
    const std::size_t colon = text.find(':');
    const std::string_view name = text.substr(0, colon);
    if (colon != std::string_view::npos)
        spec.arg = std::string(text.substr(colon + 1));

    if (name == "interleave" || name == "first-touch") {
        spec.kind = name == "interleave" ? PlacementKind::Interleave
                                         : PlacementKind::FirstTouch;
        if (!spec.arg.empty())
            return std::nullopt; // these take no argument
        return spec;
    }
    if (name == "class-affinity") {
        spec.kind = PlacementKind::ClassAffinity;
        if (!spec.arg.empty()) {
            char *end = nullptr;
            unsigned long node = std::strtoul(spec.arg.c_str(), &end, 10);
            if (!end || *end != '\0' || node >= 8)
                return std::nullopt;
        }
        return spec;
    }
    if (name == "profile") {
        spec.kind = PlacementKind::Profile;
        if (spec.arg.empty())
            return std::nullopt; // the histogram path is mandatory
        return spec;
    }
    return std::nullopt;
}

const char *
PlacementSpec::help()
{
    return "interleave, first-touch, class-affinity[:node], "
           "profile:<histogram.json>";
}

std::string
PlacementSpec::str() const
{
    std::string out = placementKindName(kind);
    if (!arg.empty())
        out += ":" + arg;
    return out;
}

PlacementPolicy::PlacementPolicy(PlacementKind kind, const Geometry &g)
    : kind_(kind), g_(g), pageShift_(shiftOf(g.pageBytes)),
      privShift_(shiftOf(g.privateStride))
{
    if (g_.nnodes == 0 || g_.pageBytes == 0 || g_.privateStride == 0)
        throw std::invalid_argument("placement: degenerate geometry");
}

std::unique_ptr<PlacementPolicy>
PlacementPolicy::interleave(const Geometry &g)
{
    return std::unique_ptr<PlacementPolicy>(
        new PlacementPolicy(PlacementKind::Interleave, g));
}

std::unique_ptr<PlacementPolicy>
PlacementPolicy::firstTouch(const Geometry &g)
{
    return std::unique_ptr<PlacementPolicy>(
        new PlacementPolicy(PlacementKind::FirstTouch, g));
}

std::unique_ptr<PlacementPolicy>
PlacementPolicy::classAffinity(const Geometry &g, const AddressSpace &space,
                               ProcId meta_node)
{
    if (meta_node >= g.nnodes)
        throw std::invalid_argument(
            "placement: class-affinity node out of range");
    auto p = std::unique_ptr<PlacementPolicy>(
        new PlacementPolicy(PlacementKind::ClassAffinity, g));
    p->space_ = &space;
    p->metaNode_ = meta_node;
    // Eagerly cover the allocated shared segment so the classification
    // (which walks granule tags) runs once here, not per access.
    const MemArena &shared = space.shared();
    if (shared.used() > 0) {
        p->ensureCovered(
            static_cast<std::size_t>(shared.base() + shared.used() - 1) /
            g.pageBytes);
    }
    return p;
}

std::unique_ptr<PlacementPolicy>
PlacementPolicy::profile(const Geometry &g,
                         const std::vector<PageAccessCounts> &hist)
{
    auto p = std::unique_ptr<PlacementPolicy>(
        new PlacementPolicy(PlacementKind::Profile, g));
    for (const PageAccessCounts &page : hist) {
        const std::size_t idx =
            static_cast<std::size_t>(page.page / g.pageBytes);
        // Majority accessor; ties break toward the lower processor id so
        // the choice never depends on container order.
        ProcId best = 0;
        std::uint64_t most = 0;
        const std::size_t n =
            std::min<std::size_t>(page.counts.size(), g.nnodes);
        for (std::size_t q = 0; q < n; ++q) {
            if (page.counts[q] > most) {
                most = page.counts[q];
                best = static_cast<ProcId>(q);
            }
        }
        if (most > 0)
            p->profiled_[idx] = best;
    }
    // Eagerly cover through the last profiled page so the hot path is a
    // table load, not a hash probe, for everything the histogram saw.
    std::size_t max_idx = 0;
    for (const auto &[idx, home] : p->profiled_)
        max_idx = std::max(max_idx, idx);
    if (!p->profiled_.empty())
        p->ensureCovered(max_idx);
    return p;
}

std::unique_ptr<PlacementPolicy>
PlacementPolicy::make(const PlacementSpec &spec, const Geometry &g,
                      const AddressSpace *space,
                      const std::vector<PageAccessCounts> *hist)
{
    switch (spec.kind) {
      case PlacementKind::Interleave:
        return interleave(g);
      case PlacementKind::FirstTouch:
        return firstTouch(g);
      case PlacementKind::ClassAffinity: {
        if (!space)
            throw std::runtime_error(
                "placement: class-affinity needs an AddressSpace");
        ProcId node = 0;
        if (!spec.arg.empty())
            node = static_cast<ProcId>(
                std::strtoul(spec.arg.c_str(), nullptr, 10));
        return classAffinity(g, *space, node);
      }
      case PlacementKind::Profile:
        if (!hist)
            throw std::runtime_error(
                "placement: profile needs a page-access histogram");
        return profile(g, *hist);
    }
    throw std::runtime_error("placement: unknown policy kind");
}

ProcId
PlacementPolicy::ruleHome(std::size_t page_idx) const
{
    const auto rr = static_cast<ProcId>(page_idx % g_.nnodes);
    switch (kind_) {
      case PlacementKind::Interleave:
      case PlacementKind::FirstTouch:
        // First-touch pages start on the interleave rule and move to the
        // toucher when beginRun claims them; a page no trace ever
        // references keeps the fallback.
        return rr;
      case PlacementKind::ClassAffinity: {
        // Pages whose dominant arena class is metadata (descriptors,
        // hashes, lock words) get the affinity node; data and index
        // pages stay interleaved for bandwidth. Unmapped shared pages
        // (synthetic test traces) also report MetaOther, but they carry
        // no engine metadata — keep them interleaved.
        const Addr page = static_cast<Addr>(page_idx) * g_.pageBytes;
        const MemArena &shared = space_->shared();
        if (page + g_.pageBytes <= shared.base() ||
            page >= shared.base() + shared.used())
            return rr;
        return isMetadataClass(space_->pageClassOf(page, g_.pageBytes))
                   ? metaNode_
                   : rr;
      }
      case PlacementKind::Profile: {
        auto it = profiled_.find(page_idx);
        return it != profiled_.end() ? it->second : rr;
      }
    }
    return rr;
}

void
PlacementPolicy::ensureCovered(std::size_t page_idx)
{
    if (page_idx >= kMaxTablePages)
        page_idx = kMaxTablePages - 1;
    if (page_idx < table_.size())
        return;
    const std::size_t old = table_.size();
    table_.resize(page_idx + 1);
    resolved_.resize(page_idx + 1, 0);
    for (std::size_t i = old; i < table_.size(); ++i)
        table_[i] = ruleHome(i);
}

void
PlacementPolicy::pinPage(Addr addr, ProcId home)
{
    if (addr >= g_.privateBase || home >= g_.nnodes)
        return; // private pages are always owner-homed
    const std::size_t idx = pageIndexOf(addr);
    if (idx >= kMaxTablePages)
        return;
    ensureCovered(idx);
    table_[idx] = home;
    if (!resolved_[idx]) {
        resolved_[idx] = 1;
        ++claimed_;
    }
}

void
PlacementPolicy::beginRun(const std::vector<const TraceStream *> &traces)
{
    // Only first-touch needs to look at the traces. The other policies
    // precompute their table at construction (class-affinity covers the
    // allocated arena span, profile covers the histogrammed pages) and
    // their ruleHome fallback returns the same answer as a table slot
    // would, so scanning every entry per run would buy nothing — and the
    // scan is O(trace), which BM_MachineReplay shows directly as lost
    // replay throughput.
    if (kind_ != PlacementKind::FirstTouch)
        return;

    // Pass 1: table coverage. Every shared page any trace touches gets a
    // slot so pass 2 can claim it.
    std::size_t max_idx = 0;
    bool any = false;
    for (const TraceStream *t : traces) {
        if (!t)
            continue;
        for (const TraceEntry &e : t->entries()) {
            if (e.op == Op::Busy || e.addr >= g_.privateBase)
                continue;
            max_idx = std::max(max_idx, pageIndexOf(e.addr));
            any = true;
        }
    }
    if (any)
        ensureCovered(max_idx);

    // Pass 2: first-touch claims, in (trace position, processor) order.
    // Position-major iteration makes "first" a pure function of the
    // traces: both engines visit each position exactly once, so the
    // resulting homes are identical under seq and par at any thread
    // count (the same argument the fault planner uses).
    std::size_t longest = 0;
    for (const TraceStream *t : traces)
        if (t)
            longest = std::max(longest, t->entries().size());
    for (std::size_t pos = 0; pos < longest; ++pos) {
        for (std::size_t p = 0; p < traces.size(); ++p) {
            if (!traces[p] || pos >= traces[p]->entries().size())
                continue;
            const TraceEntry &e = traces[p]->entries()[pos];
            if (e.op == Op::Busy || e.addr >= g_.privateBase)
                continue;
            const std::size_t idx = pageIndexOf(e.addr);
            if (idx >= table_.size() || resolved_[idx])
                continue;
            table_[idx] = static_cast<ProcId>(
                std::min<std::size_t>(p, g_.nnodes - 1));
            resolved_[idx] = 1;
            ++claimed_;
        }
    }
}

} // namespace sim
} // namespace dss
