#include "sim/check.hh"

#include <algorithm>
#include <bitset>
#include <sstream>

#include "obs/registry.hh"
#include "sim/machine.hh"

namespace dss {
namespace sim {

namespace {

constexpr std::uint64_t
bit(ProcId p)
{
    return std::uint64_t{1} << p;
}

unsigned
popcount(std::uint64_t mask)
{
    return static_cast<unsigned>(std::bitset<64>(mask).count());
}

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

std::string_view
invariantName(Invariant inv)
{
    switch (inv) {
      case Invariant::Swmr: return "swmr";
      case Invariant::DirState: return "dir_state";
      case Invariant::Inclusion: return "inclusion";
      case Invariant::WbFifo: return "wb_fifo";
      case Invariant::LockState: return "lock_state";
    }
    return "?";
}

void
InvariantChecker::report(Invariant inv, Addr addr, ProcId proc,
                         std::string detail)
{
    ++counts_[static_cast<std::size_t>(inv)];
    ++total_;
    if (recorded_.size() < kMaxRecorded)
        recorded_.push_back({inv, addr, proc, std::move(detail)});
}

void
InvariantChecker::checkLine(const Machine &m, Addr addr)
{
    const MachineConfig &cfg = m.cfg_;
    const Addr line = m.dir_.lineAddrOf(addr);
    // The parallel engine's prefetch-share back-off can strand a stale
    // clean copy (see file comment); tolerate exactly that shape.
    const bool tol = cfg.prefetchData;

    std::uint64_t holders = 0;
    std::uint64_t dirty = 0;
    for (ProcId p = 0; p < cfg.nprocs; ++p) {
        const Cache &l2 = m.nodes_[p]->coh();
        if (!l2.contains(line))
            continue;
        holders |= bit(p);
        if (l2.isDirty(line))
            dirty |= bit(p);
    }

    // --- Swmr: at most one Modified copy, never mixed with others ---
    if (popcount(dirty) > 1) {
        report(Invariant::Swmr, line, 0,
               "multiple dirty copies of " + hexAddr(line) +
                   " (dirty mask " + std::to_string(dirty) + ")");
    } else if (dirty != 0 && holders != dirty && !tol) {
        report(Invariant::Swmr, line, 0,
               "dirty copy of " + hexAddr(line) +
                   " coexists with other cached copies (holders " +
                   std::to_string(holders) + ")");
    }

    // --- DirState: the directory entry agrees with the caches ---
    const Directory::Entry *pe = m.dir_.peek(line);
    const Directory::Entry e = pe ? *pe : Directory::Entry{};
    switch (e.state) {
      case Directory::State::Uncached:
        if (dirty != 0)
            report(Invariant::DirState, line, 0,
                   "dirty cached copy of " + hexAddr(line) +
                       " under an Uncached directory entry");
        else if (holders != 0 && !tol)
            report(Invariant::DirState, line, 0,
                   "cached copy of " + hexAddr(line) +
                       " under an Uncached directory entry");
        break;
      case Directory::State::Shared: {
        if (e.sharers == 0)
            report(Invariant::DirState, line, 0,
                   "Shared entry for " + hexAddr(line) +
                       " with an empty sharer set");
        if (dirty != 0)
            report(Invariant::DirState, line, 0,
                   "dirty cached copy of " + hexAddr(line) +
                       " under a Shared directory entry");
        const std::uint64_t missing = e.sharers & ~holders;
        if (missing != 0)
            report(Invariant::DirState, line, 0,
                   "sharer bits " + std::to_string(missing) + " of " +
                       hexAddr(line) + " name caches with no copy");
        const std::uint64_t extra = holders & ~e.sharers;
        if (extra != 0 && !tol)
            report(Invariant::DirState, line, 0,
                   "caches " + std::to_string(extra) + " hold " +
                       hexAddr(line) + " but are not in the sharer set");
        break;
      }
      case Directory::State::Dirty: {
        if (e.owner >= cfg.nprocs) {
            report(Invariant::DirState, line, 0,
                   "Dirty entry for " + hexAddr(line) +
                       " names invalid owner " + std::to_string(e.owner));
            break;
        }
        if (!(holders & bit(e.owner)))
            report(Invariant::DirState, line, e.owner,
                   "Dirty entry for " + hexAddr(line) +
                       " but the owner holds no copy");
        else if (!(dirty & bit(e.owner)))
            report(Invariant::DirState, line, e.owner,
                   "Dirty entry for " + hexAddr(line) +
                       " but the owner's copy is clean");
        if (e.sharers != bit(e.owner))
            report(Invariant::DirState, line, e.owner,
                   "Dirty entry for " + hexAddr(line) +
                       " with sharer set != owner bit");
        const std::uint64_t others = holders & ~bit(e.owner);
        if (others != 0 && !tol)
            report(Invariant::DirState, line, e.owner,
                   "caches " + std::to_string(others) +
                       " hold copies of Dirty-owned " + hexAddr(line));
        break;
      }
    }

    // --- Inclusion: each level's sublines require the enclosing line
    // one level down, pairwise along the whole chain ---
    for (ProcId p = 0; p < cfg.nprocs; ++p) {
        const Machine::Node &n = *m.nodes_[p];
        for (std::size_t u = 0; u + 1 < n.caches.size(); ++u) {
            for (Addr la = line; la < line + cfg.coherent().lineBytes;
                 la += cfg.levels[u + 1].lineBytes) {
                if (n.caches[u + 1].contains(la))
                    continue;
                for (Addr a = la; a < la + cfg.levels[u + 1].lineBytes;
                     a += cfg.levels[u].lineBytes) {
                    if (n.caches[u].contains(a))
                        report(Invariant::Inclusion, a, p,
                               "L" + std::to_string(u + 1) + " of proc " +
                                   std::to_string(p) + " holds " +
                                   hexAddr(a) + " without the L" +
                                   std::to_string(u + 2) + " line");
                }
            }
        }
    }
}

void
InvariantChecker::checkWriteBuffer(const Machine &m, ProcId p)
{
    if (!m.nodes_[p]->wb.fifoOrdered())
        report(Invariant::WbFifo, 0, p,
               "write buffer of proc " + std::to_string(p) +
                   " has out-of-order retire times");
}

void
InvariantChecker::checkLocks(const Machine &m)
{
    const unsigned np = m.cfg_.nprocs;
    std::vector<unsigned> waitCount(np, 0);
    for (const LockTable::Info &info : m.locks_.snapshot()) {
        if (!info.held && !info.waiters.empty())
            report(Invariant::LockState, info.word, 0,
                   "waiters queued on free lock " + hexAddr(info.word));
        if (info.held && info.holder >= np)
            report(Invariant::LockState, info.word, info.holder,
                   "lock " + hexAddr(info.word) +
                       " held by invalid processor");
        std::vector<ProcId> seen;
        for (ProcId w : info.waiters) {
            if (w >= np) {
                report(Invariant::LockState, info.word, w,
                       "invalid processor queued on " + hexAddr(info.word));
                continue;
            }
            ++waitCount[w];
            if (info.held && w == info.holder)
                report(Invariant::LockState, info.word, w,
                       "holder of " + hexAddr(info.word) +
                           " queued on its own lock");
            if (std::find(seen.begin(), seen.end(), w) != seen.end())
                report(Invariant::LockState, info.word, w,
                       "processor queued twice on " + hexAddr(info.word));
            seen.push_back(w);
        }
    }
    // Cross-check against the engine's blocked flags (only meaningful
    // while a run is active and between whole steps/barriers).
    if (m.runs_.size() == np) {
        for (ProcId p = 0; p < np; ++p) {
            const bool blocked = m.runs_[p].blocked;
            if (blocked && waitCount[p] != 1)
                report(Invariant::LockState, 0, p,
                       "blocked processor " + std::to_string(p) +
                           " waits in " + std::to_string(waitCount[p]) +
                           " queues");
            else if (!blocked && waitCount[p] != 0)
                report(Invariant::LockState, 0, p,
                       "runnable processor " + std::to_string(p) +
                           " is queued as a lock waiter");
        }
    }
}

void
InvariantChecker::onStep(const Machine &m, ProcId p, const TraceEntry &e)
{
    switch (e.op) {
      case Op::Read:
        checkLine(m, e.addr);
        break;
      case Op::Write:
        checkLine(m, e.addr);
        checkWriteBuffer(m, p);
        break;
      case Op::Busy:
        break;
      case Op::LockAcq:
      case Op::LockRel:
        checkLine(m, e.addr);
        checkLocks(m);
        break;
    }
}

void
InvariantChecker::onBarrier(const Machine &m, const std::vector<Addr> &lines)
{
    for (Addr a : lines)
        checkLine(m, a);
    checkLocks(m);
    for (ProcId p = 0; p < m.cfg_.nprocs; ++p)
        checkWriteBuffer(m, p);
}

void
InvariantChecker::sweep(const Machine &m)
{
    // Every line the directory tracks, plus every resident L2 line (to
    // catch cached copies the directory forgot about entirely).
    std::vector<Addr> lines;
    for (const auto &[addr, entry] : m.dir_.sortedEntries()) {
        (void)entry;
        lines.push_back(addr);
    }
    for (ProcId p = 0; p < m.cfg_.nprocs; ++p)
        for (Addr a : m.nodes_[p]->coh().residentLines())
            lines.push_back(m.dir_.lineAddrOf(a));
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    for (Addr a : lines)
        checkLine(m, a);

    // Full inclusion pass from the upper side (checkLine only covers
    // lines the coherent level/directory know about): every resident
    // line at level u must be enclosed at level u+1.
    for (ProcId p = 0; p < m.cfg_.nprocs; ++p) {
        const Machine::Node &n = *m.nodes_[p];
        for (std::size_t u = 0; u + 1 < n.caches.size(); ++u)
            for (Addr a : n.caches[u].residentLines())
                if (!n.caches[u + 1].contains(a))
                    report(Invariant::Inclusion, a, p,
                           "L" + std::to_string(u + 1) + " of proc " +
                               std::to_string(p) + " holds " + hexAddr(a) +
                               " without the L" + std::to_string(u + 2) +
                               " line");
        checkWriteBuffer(m, p);
    }
    checkLocks(m);
}

void
InvariantChecker::onRunEnd(const Machine &m)
{
    sweep(m);
}

void
InvariantChecker::registerStats(obs::Registry &reg,
                                const std::string &prefix) const
{
    for (std::size_t i = 0; i < kNumInvariants; ++i) {
        const auto inv = static_cast<Invariant>(i);
        reg.addCounter(
            obs::metricName(prefix,
                            std::string("violations.") +
                                std::string(invariantName(inv))),
            [this, i] { return counts_[i]; });
    }
    reg.addCounter(obs::metricName(prefix, "violations.total"),
                   [this] { return total_; });
}

obs::Json
InvariantChecker::toJson() const
{
    obs::Json j = obs::Json::object();
    obs::Json v = obs::Json::object();
    for (std::size_t i = 0; i < kNumInvariants; ++i)
        v[std::string(invariantName(static_cast<Invariant>(i)))] =
            counts_[i];
    v["total"] = total_;
    j["violations"] = std::move(v);
    obs::Json recs = obs::Json::array();
    for (const CheckViolation &r : recorded_) {
        obs::Json rec = obs::Json::object();
        rec["invariant"] = std::string(invariantName(r.inv));
        rec["addr"] = r.addr;
        rec["proc"] = r.proc;
        rec["detail"] = r.detail;
        recs.push(std::move(rec));
    }
    j["records"] = std::move(recs);
    return j;
}

} // namespace sim
} // namespace dss
