#include "sim/directory.hh"

#include <algorithm>
#include <cassert>

#include "obs/registry.hh"

namespace dss {
namespace sim {

Directory::Directory(unsigned nnodes, std::size_t line_bytes,
                     std::size_t page_bytes, Addr private_base,
                     Addr private_stride, const LatencyConfig &lat)
    : nnodes_(nnodes), lineBytes_(line_bytes), pageBytes_(page_bytes),
      privateBase_(private_base), privateStride_(private_stride), lat_(lat),
      controllerFree_(nnodes, 0), hctrs_(nnodes)
{
    assert(nnodes_ > 0 && nnodes_ <= 8);
}

Directory::Entry &
Directory::entry(Addr addr)
{
    return entries_[lineAddrOf(addr)];
}

Cycles
Directory::transactionLatency(ProcId requester, ProcId home,
                              ProcId dirty_owner, bool dirty) const
{
    // Count network crossings on the critical request path:
    //   requester -> home            (0 if home is local)
    //   home -> owner -> requester   (only if the line is dirty elsewhere)
    //   home -> requester            (otherwise)
    const unsigned n = crossings(requester, home, dirty_owner, dirty);
    Cycles base;
    switch (n) {
      case 0: base = lat_.localMem; break;
      case 1:
        base = lat_.localMem + (lat_.remote2Hop - lat_.localMem) / 2;
        break;
      case 2: base = lat_.remote2Hop; break;
      default: base = lat_.remote3Hop; break;
    }
    // Transfer-time adjustment relative to the 64 B baseline line. Lines
    // shorter than the baseline do not shorten the round trip (fixed
    // overheads and critical-word-first dominate); longer lines pay for
    // the extra data.
    std::int64_t adj =
        (static_cast<std::int64_t>(lineBytes_) - 64) /
        static_cast<std::int64_t>(lat_.memBytesPerCycle);
    if (adj < 0)
        adj = 0;
    return base + static_cast<Cycles>(adj);
}

Cycles
Directory::occupancyCycles() const
{
    std::int64_t occ =
        static_cast<std::int64_t>(lat_.controllerOccupancy) +
        (static_cast<std::int64_t>(lineBytes_) - 64) /
            static_cast<std::int64_t>(lat_.ctrlBytesPerCycle);
    if (occ < static_cast<std::int64_t>(lat_.controllerOccupancy))
        occ = static_cast<std::int64_t>(lat_.controllerOccupancy);
    return static_cast<Cycles>(occ);
}

Cycles
Directory::acquireController(ProcId home, Cycles arrival)
{
    Cycles &free_at = controllerFree_.at(home);
    Cycles delay = free_at > arrival ? free_at - arrival : 0;
    free_at = std::max(free_at, arrival) + occupancyCycles();
    ++hctrs_[home].requests;
    hctrs_[home].queueCycles += delay;
    return delay;
}

void
Directory::occupy(ProcId home, Cycles arrival, Cycles charged_delay)
{
    Cycles &free_at = controllerFree_.at(home);
    free_at = std::max(free_at, arrival) + occupancyCycles();
    ++hctrs_[home].requests;
    hctrs_[home].queueCycles += charged_delay;
}

const Directory::Entry *
Directory::peek(Addr addr) const
{
    auto it = entries_.find(lineAddrOf(addr));
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::pair<Addr, Directory::Entry>>
Directory::sortedEntries() const
{
    std::vector<std::pair<Addr, Entry>> out(entries_.begin(),
                                            entries_.end());
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

void
Directory::registerStats(obs::Registry &reg, const std::string &prefix) const
{
    for (unsigned h = 0; h < nnodes_; ++h) {
        const std::string base =
            obs::metricName(prefix, "home" + std::to_string(h));
        reg.addCounter(base + ".requests",
                       [this, h] { return hctrs_[h].requests; });
        reg.addCounter(base + ".queue_cycles",
                       [this, h] { return hctrs_[h].queueCycles; });
    }
    reg.addCounter(obs::metricName(prefix, "requests"), [this] {
        std::uint64_t n = 0;
        for (const HomeCounters &c : hctrs_)
            n += c.requests;
        return n;
    });
    reg.addCounter(obs::metricName(prefix, "queue_cycles"), [this] {
        std::uint64_t n = 0;
        for (const HomeCounters &c : hctrs_)
            n += c.queueCycles;
        return n;
    });
    reg.addGauge(obs::metricName(prefix, "tracked_lines"), [this] {
        return static_cast<double>(entries_.size());
    });
}

void
Directory::reset()
{
    entries_.clear();
    resetControllers();
}

void
Directory::resetControllers()
{
    std::fill(controllerFree_.begin(), controllerFree_.end(), 0);
}

void
Directory::resetStats()
{
    std::fill(hctrs_.begin(), hctrs_.end(), HomeCounters{});
}

} // namespace sim
} // namespace dss
