/**
 * @file
 * Pluggable NUMA page-placement policies.
 *
 * The paper's headline cost is remote memory: 2-hop (249-cycle) and
 * 3-hop (351-cycle) transactions dominate stall time, and its
 * conclusions name data placement as the lever a CC-NUMA system has
 * against them. The home node of every page used to be hardwired inside
 * Directory::homeOf (shared pages interleaved round-robin, private pages
 * owner-homed); this subsystem lifts that decision into a policy object
 * the Directory merely consults:
 *
 *   interleave       page i -> node i mod N (bit-identical to the
 *                    historical hardwired rule; the default)
 *   first-touch      a shared page is homed at the first processor to
 *                    reference it, resolved at trace position (see
 *                    beginRun) so the outcome is identical under the
 *                    sequential and parallel engines at any thread count
 *   class-affinity   pages whose dominant MemArena DataClass is metadata
 *                    (buffer descriptors, lookup hash, lock words, ...)
 *                    are homed at one node; Data/Index pages interleave
 *   profile          two-pass: a per-page access histogram from a prior
 *                    run (obs::PageProfile JSON) homes each page at its
 *                    majority accessor
 *
 * Every policy resolves to the same representation: a flat page-index ->
 * home-node table (precomputed at construction; extended per run only by
 * first-touch), so the homeOf hot path is a single bounds-checked vector
 * load — with a shift/modulo fallback for pages past the table — instead
 * of the div/mod chain the Directory used to evaluate per access. Private addresses are owner-homed under
 * every policy (the paper's OS already does per-process local
 * allocation; the policies only govern the shared segment).
 */

#ifndef DSS_SIM_PLACEMENT_HH
#define DSS_SIM_PLACEMENT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/addr.hh"

namespace dss {
namespace sim {

class AddressSpace;
class TraceStream;

enum class PlacementKind : std::uint8_t {
    Interleave,
    FirstTouch,
    ClassAffinity,
    Profile,
};

/** Canonical flag-value name ("interleave", "first-touch", ...). */
const char *placementKindName(PlacementKind kind);

/**
 * Parsed form of the --placement=<name>[:arg] flag value.
 * The arg is the metadata home node for class-affinity (default 0) and
 * the histogram JSON path for profile (required).
 */
struct PlacementSpec
{
    PlacementKind kind = PlacementKind::Interleave;
    std::string arg;

    /** Parse a flag value; nullopt on unknown names or malformed args. */
    static std::optional<PlacementSpec> parse(std::string_view text);

    /** One-line list of accepted values, for usage messages. */
    static const char *help();

    /** Round-trip back to "<name>[:arg]". */
    std::string str() const;
};

/** One page's per-processor access counts (the profile policy's input). */
struct PageAccessCounts
{
    Addr page = 0; ///< page-aligned simulated address
    std::vector<std::uint64_t> counts; ///< indexed by processor
};

class PlacementPolicy
{
  public:
    /** The address-space shape a policy maps over. */
    struct Geometry
    {
        unsigned nnodes = 4;
        std::size_t pageBytes = 8 * 1024;
        Addr privateBase = 0;
        Addr privateStride = 1;
    };

    /**
     * Safety cap on the flat table: pages at or beyond this index fall
     * back to the policy's rule computed on the fly (synthetic test
     * traces may place a lock word anywhere in the 38-bit shared range;
     * real workloads use a few thousand pages).
     */
    static constexpr std::size_t kMaxTablePages = std::size_t{1} << 20;

    static std::unique_ptr<PlacementPolicy> interleave(const Geometry &g);
    static std::unique_ptr<PlacementPolicy> firstTouch(const Geometry &g);
    /**
     * @param space Arena class maps driving the page classification; must
     *        outlive the policy.
     * @param meta_node Home of every metadata-dominated page.
     */
    static std::unique_ptr<PlacementPolicy>
    classAffinity(const Geometry &g, const AddressSpace &space,
                  ProcId meta_node = 0);
    static std::unique_ptr<PlacementPolicy>
    profile(const Geometry &g, const std::vector<PageAccessCounts> &hist);

    /** Build any spec; class-affinity requires @p space (else throws). */
    static std::unique_ptr<PlacementPolicy>
    make(const PlacementSpec &spec, const Geometry &g,
         const AddressSpace *space,
         const std::vector<PageAccessCounts> *hist);

    PlacementKind kind() const { return kind_; }
    const char *name() const { return placementKindName(kind_); }
    const Geometry &geometry() const { return g_; }

    /** Home node of the page containing @p addr (the hot path). */
    ProcId
    homeOf(Addr addr) const
    {
        if (addr >= g_.privateBase) {
            const Addr node = privShift_ >= 0
                                  ? (addr - g_.privateBase) >> privShift_
                                  : (addr - g_.privateBase) /
                                        g_.privateStride;
            return node < g_.nnodes ? static_cast<ProcId>(node)
                                    : static_cast<ProcId>(g_.nnodes - 1);
        }
        const std::size_t idx = pageIndexOf(addr);
        if (idx < table_.size())
            return table_[idx];
        return ruleHome(idx);
    }

    /**
     * Per-run resolution hook, called by the Machine before either
     * engine starts. A no-op for every kind except first-touch (the
     * others precompute their table at construction, and their fallback
     * rule returns the same home as a table slot would). For first-touch
     * it grows the flat table to cover every shared page the traces
     * reference, then claims still-unclaimed pages for the first
     * processor to reference them.
     *
     * The claim scan iterates trace positions in the outer loop and
     * processors in the inner loop, so "first" is defined purely by the
     * traces, never by simulated time or host scheduling: the same trace
     * set yields the same homes under --engine seq and par at any thread
     * count. Claims persist across runs (a page's first touch ever wins),
     * which is what the warm-start sequences expect of a real OS.
     */
    void beginRun(const std::vector<const TraceStream *> &traces);

    /**
     * Explicit placement hint: pin the page containing @p addr to
     * @p home, overriding the policy rule (and, for first-touch, the
     * future claim). The db layer's allocation-time hints feed this.
     */
    void pinPage(Addr addr, ProcId home);

    /** Pages currently covered by the flat table (tests/diagnostics). */
    std::size_t coveredPages() const { return table_.size(); }

    /** First-touch pages claimed so far (0 for other kinds). */
    std::size_t claimedPages() const { return claimed_; }

  private:
    PlacementPolicy(PlacementKind kind, const Geometry &g);

    std::size_t
    pageIndexOf(Addr addr) const
    {
        return pageShift_ >= 0
                   ? static_cast<std::size_t>(addr >> pageShift_)
                   : static_cast<std::size_t>(addr / g_.pageBytes);
    }

    /** The policy's rule for an unclaimed page index (cold path). */
    ProcId ruleHome(std::size_t page_idx) const;

    /** Extend the table through @p page_idx using ruleHome. */
    void ensureCovered(std::size_t page_idx);

    PlacementKind kind_;
    Geometry g_;
    int pageShift_ = -1; ///< log2(pageBytes) when a power of two
    int privShift_ = -1; ///< log2(privateStride) when a power of two

    std::vector<ProcId> table_; ///< page index -> home node
    /** first-touch: 1 = table_[i] is a claim/pin, not the fallback rule */
    std::vector<std::uint8_t> resolved_;
    std::size_t claimed_ = 0;

    const AddressSpace *space_ = nullptr; ///< class-affinity only
    ProcId metaNode_ = 0;                 ///< class-affinity only
    /** profile: page index -> majority accessor */
    std::unordered_map<std::size_t, ProcId> profiled_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_PLACEMENT_HH
