#include "sim/arena.hh"

#include <algorithm>
#include <stdexcept>

namespace dss {
namespace sim {

MemArena::MemArena(std::string name, Addr base, std::size_t capacity,
                   DataClass default_class)
    : name_(std::move(name)), base_(base), capacity_(capacity),
      defaultClass_(default_class)
{
    assert(base % kGranule == 0);
    backing_.resize(capacity, 0);
    tags_.resize((capacity + kGranule - 1) / kGranule, default_class);
}

Addr
MemArena::alloc(std::size_t bytes, DataClass cls, std::size_t align)
{
    if (align < kGranule)
        align = kGranule;
    // Align the absolute simulated address, not just the arena offset.
    Addr next = base_ + used_;
    Addr aligned = (next + align - 1) & ~static_cast<Addr>(align - 1);
    std::size_t off = static_cast<std::size_t>(aligned - base_);
    if (off + bytes > capacity_) {
        throw std::runtime_error(
            "MemArena '" + name_ + "' out of capacity: need " +
            std::to_string(off + bytes) + " of " + std::to_string(capacity_));
    }
    used_ = off + bytes;
    Addr addr = base_ + off;
    setClass(addr, bytes, cls);
    return addr;
}

void
MemArena::rewind(std::size_t mark)
{
    assert(mark <= used_);
    used_ = mark;
}

void
MemArena::setClass(Addr addr, std::size_t bytes, DataClass cls)
{
    assert(addr >= base_ && addr + bytes <= base_ + capacity_);
    std::size_t first = (addr - base_) / kGranule;
    std::size_t last = (addr - base_ + bytes + kGranule - 1) / kGranule;
    for (std::size_t g = first; g < last; ++g)
        tags_[g] = cls;
}

DataClass
MemArena::classOf(Addr addr) const
{
    if (addr < base_ || addr >= base_ + capacity_)
        return defaultClass_;
    return tags_[(addr - base_) / kGranule];
}

DataClass
MemArena::dominantClassIn(Addr addr, std::size_t bytes) const
{
    const Addr lo = std::max(addr, base_);
    const Addr hi = std::min(addr + bytes, base_ + used_);
    if (lo >= hi)
        return defaultClass_;
    std::size_t votes[kNumDataClasses] = {};
    for (std::size_t g = (lo - base_) / kGranule,
                     end = (hi - base_ + kGranule - 1) / kGranule;
         g < end; ++g)
        ++votes[static_cast<std::size_t>(tags_[g])];
    std::size_t best = 0;
    for (std::size_t c = 1; c < kNumDataClasses; ++c)
        if (votes[c] > votes[best])
            best = c;
    return static_cast<DataClass>(best);
}

AddressSpace::AddressSpace(unsigned nprocs, std::size_t shared_capacity,
                           std::size_t private_capacity)
{
    shared_ = std::make_unique<MemArena>("shared", kSharedBase,
                                         shared_capacity,
                                         DataClass::MetaOther);
    private_.reserve(nprocs);
    for (unsigned p = 0; p < nprocs; ++p) {
        private_.push_back(std::make_unique<MemArena>(
            "priv" + std::to_string(p), kPrivateBase + p * kPrivateStride,
            private_capacity, DataClass::Priv));
    }
}

MemArena *
AddressSpace::arenaOf(Addr addr)
{
    return const_cast<MemArena *>(
        static_cast<const AddressSpace *>(this)->arenaOf(addr));
}

const MemArena *
AddressSpace::arenaOf(Addr addr) const
{
    if (isShared(addr))
        return shared_->contains(addr) ? shared_.get() : nullptr;
    std::size_t p = (addr - kPrivateBase) / kPrivateStride;
    if (p >= private_.size())
        return nullptr;
    return private_[p]->contains(addr) ? private_[p].get() : nullptr;
}

DataClass
AddressSpace::classOf(Addr addr) const
{
    const MemArena *a = arenaOf(addr);
    return a ? a->classOf(addr) : DataClass::MetaOther;
}

ProcId
AddressSpace::ownerOf(Addr addr) const
{
    if (isShared(addr))
        return nprocs();
    return static_cast<ProcId>((addr - kPrivateBase) / kPrivateStride);
}

DataClass
AddressSpace::pageClassOf(Addr addr, std::size_t page_bytes) const
{
    if (!isShared(addr))
        return DataClass::Priv;
    const Addr page = addr - addr % page_bytes;
    if (page + page_bytes <= shared_->base() ||
        page >= shared_->base() + shared_->used())
        return DataClass::MetaOther;
    return shared_->dominantClassIn(page, page_bytes);
}

} // namespace sim
} // namespace dss
