#include "sim/trace.hh"

namespace dss {
namespace sim {

TraceStream::Counts
TraceStream::counts() const
{
    Counts c;
    for (const TraceEntry &e : entries_) {
        switch (e.op) {
          case Op::Read:
            ++c.reads;
            ++c.readsByClass[static_cast<std::size_t>(e.cls)];
            break;
          case Op::Write:
            ++c.writes;
            ++c.writesByClass[static_cast<std::size_t>(e.cls)];
            break;
          case Op::Busy:
            c.busyCycles += e.extra;
            break;
          case Op::LockAcq:
            ++c.lockAcqs;
            break;
          case Op::LockRel:
            break;
        }
    }
    return c;
}

} // namespace sim
} // namespace dss
