#include "sim/trace.hh"

namespace dss {
namespace sim {

TraceStream::Counts
TraceStream::counts() const
{
    Counts c;
    for (const TraceEntry &e : entries_) {
        switch (e.op) {
          case Op::Read:
            ++c.reads;
            ++c.readsByClass[static_cast<std::size_t>(e.cls)];
            break;
          case Op::Write:
            ++c.writes;
            ++c.writesByClass[static_cast<std::size_t>(e.cls)];
            break;
          case Op::Busy:
            c.busyCycles += e.extra;
            break;
          case Op::LockAcq:
            ++c.lockAcqs;
            break;
          case Op::LockRel:
            break;
        }
    }
    return c;
}

std::uint64_t
TraceStream::contentHash() const
{
    // FNV-1a over the entry fields (not the raw struct bytes: the 16-byte
    // layout has one padding byte whose value is unspecified).
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (const TraceEntry &e : entries_) {
        mix(e.addr);
        mix((static_cast<std::uint64_t>(e.extra) << 24) |
            (static_cast<std::uint64_t>(e.op) << 16) |
            (static_cast<std::uint64_t>(e.cls) << 8) | e.size);
    }
    return h;
}

} // namespace sim
} // namespace dss
