/**
 * @file
 * Directory-based coherence state for a CC-NUMA machine.
 *
 * The directory tracks, per secondary-cache line, whether memory holds the
 * only copy (Uncached), one or more caches hold clean copies (Shared), or a
 * single cache holds a dirty copy (Dirty). The home node of a line is
 * determined by its 8 KB page: shared pages are interleaved round-robin
 * across the nodes; private pages are homed at their owning node.
 *
 * Latency mirrors the paper's baseline: a miss satisfied by local memory
 * costs 80 cycles round trip; by a remote home or a dirty remote owner in a
 * 2-hop transaction, 249; in a 3-hop transaction, 351. The home node's
 * memory controller is a contended resource (the paper models all
 * contention except the network); the network itself is a fixed delay
 * folded into those constants.
 */

#ifndef DSS_SIM_DIRECTORY_HH
#define DSS_SIM_DIRECTORY_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/addr.hh"
#include "sim/placement.hh"

namespace dss {
namespace obs {
class Registry;
} // namespace obs

namespace sim {

/** Latency constants for one machine configuration (paper Section 4.3). */
struct LatencyConfig
{
    Cycles l1Hit = 1;          ///< primary-cache hit (no stall)
    Cycles l2Hit = 16;         ///< round trip to the secondary cache
    Cycles localMem = 80;      ///< local memory, clean line
    Cycles remote2Hop = 249;   ///< two network crossings on the critical path
    Cycles remote3Hop = 351;   ///< three network crossings
    Cycles controllerOccupancy = 18; ///< home memory-controller service time

    /**
     * The four round-trip latencies above are quoted for the baseline
     * 64 B L2 line. Other line sizes transfer more or less data: memory
     * transactions gain (line - 64) / memBytesPerCycle cycles, and the
     * home controller is occupied (line - 64) / ctrlBytesPerCycle longer
     * ("each miss takes longer to satisfy", paper Section 5.2.1).
     */
    Cycles memBytesPerCycle = 2;
    Cycles ctrlBytesPerCycle = 8;
};

class Directory
{
  public:
    enum class State : std::uint8_t { Uncached, Shared, Dirty };

    struct Entry
    {
        State state = State::Uncached;
        std::uint64_t sharers = 0; ///< bitmask of caching nodes
        ProcId owner = 0;         ///< valid when state == Dirty

        bool operator==(const Entry &o) const = default;
    };

    /**
     * @param nnodes Number of nodes (processor + memory each).
     * @param line_bytes Coherence granularity (the L2 line size).
     * @param page_bytes Interleaving granularity for home assignment.
     * @param private_base Addresses at or above this are private.
     * @param private_stride Private address-space stride per node.
     */
    Directory(unsigned nnodes, std::size_t line_bytes,
              std::size_t page_bytes, Addr private_base,
              Addr private_stride, const LatencyConfig &lat);

    /**
     * Home node of the line containing @p addr: delegated to the
     * attached PlacementPolicy (sim/placement.hh). Without one — a
     * standalone Directory in unit tests or microbenches — the
     * historical hardwired rule applies: shared pages interleave
     * round-robin, private pages are homed at their owning node.
     */
    ProcId
    homeOf(Addr addr) const
    {
        if (placement_)
            return placement_->homeOf(addr);
        if (addr >= privateBase_) {
            auto node = static_cast<ProcId>((addr - privateBase_) /
                                            privateStride_);
            return std::min<ProcId>(node, nnodes_ - 1);
        }
        return static_cast<ProcId>((addr / pageBytes_) % nnodes_);
    }

    /**
     * Attach the page-placement policy consulted by homeOf. Borrowed;
     * pass nullptr to fall back to the hardwired interleave rule. The
     * policy's geometry must match this directory's page/private layout.
     */
    void setPlacement(const PlacementPolicy *placement)
    {
        placement_ = placement;
    }

    const PlacementPolicy *placement() const { return placement_; }

    /** Directory entry for the line containing @p addr (created lazily). */
    Entry &entry(Addr addr);

    /**
     * Read-only lookup that never creates an entry; nullptr when the line
     * has no directory state yet. Safe to call concurrently with other
     * readers (the parallel engine's frozen phase-A view).
     */
    const Entry *peek(Addr addr) const;

    /** Line-aligned address. */
    Addr lineAddrOf(Addr addr) const { return addr & ~(lineBytes_ - 1); }

    /**
     * Uncontended round-trip latency of a transaction issued by
     * @p requester for a line homed at @p home, possibly forwarded to a
     * @p dirty_owner (pass requester itself for "no forwarding").
     */
    Cycles transactionLatency(ProcId requester, ProcId home,
                              ProcId dirty_owner, bool dirty) const;

    /**
     * Network crossings on a transaction's critical path — the quantity
     * transactionLatency prices (0 = satisfied locally, 2 = remote home
     * or local-home-remote-owner, 3 = remote home forwarding to a remote
     * dirty owner).
     */
    static unsigned
    crossings(ProcId requester, ProcId home, ProcId dirty_owner, bool dirty)
    {
        unsigned n = 0;
        if (home != requester)
            ++n;
        if (dirty && dirty_owner != requester) {
            if (dirty_owner != home)
                ++n; // home forwards to the owner
            ++n;     // owner (or home-as-owner) replies to the requester
        } else {
            if (home != requester)
                ++n; // home replies with the memory copy
        }
        return n;
    }

    /** Hop classes of the per-class transaction counters. */
    static constexpr std::size_t kNumHopClasses = 3;

    /**
     * Hop-class index of a transaction: 0 = local, 1 = 2-hop,
     * 2 = 3-hop (the paper's local / 249-cycle / 351-cycle buckets).
     */
    static std::size_t
    hopClass(ProcId requester, ProcId home, ProcId dirty_owner, bool dirty)
    {
        const unsigned n = crossings(requester, home, dirty_owner, dirty);
        return n == 0 ? 0 : (n <= 2 ? 1 : 2);
    }

    /**
     * Serialize a request at @p home's memory controller.
     * @param arrival Cycle the request reaches the controller.
     * @return queuing delay before service starts.
     */
    Cycles acquireController(ProcId home, Cycles arrival);

    /**
     * Occupy @p home's controller without computing a queuing delay: the
     * parallel engine computed @p charged_delay against its phase-A
     * overlay and replays only the occupancy (and the contention
     * counters) at the window barrier.
     */
    void occupy(ProcId home, Cycles arrival, Cycles charged_delay);

    /** Cycle @p home's controller becomes free (read-only view). */
    Cycles
    controllerFreeAt(ProcId home) const
    {
        return controllerFree_[home];
    }

    /** Controller service time per transaction at the current line size. */
    Cycles occupancyCycles() const;

    /** Forget all sharing state and controller occupancy. */
    void reset();

    /** Reset only controller occupancy (clocks restart between runs). */
    void resetControllers();

    /**
     * Clear the per-home contention counters. They are lifetime
     * counters otherwise — reset()/resetControllers() leave them alone —
     * which made repetitions of runSequence accumulate each other's
     * requests; the harness runner calls this before every repetition so
     * per-run snapshots and epoch deltas reconcile.
     */
    void resetStats();

    unsigned nnodes() const { return nnodes_; }
    const LatencyConfig &latency() const { return lat_; }

    /** Number of lines with directory state (for tests). */
    std::size_t trackedLines() const { return entries_.size(); }

    /**
     * Deterministic dump of all directory state, sorted by line address
     * (the backing map is unordered). Used by the differential tests to
     * compare final machine state across engines and thread counts.
     */
    std::vector<std::pair<Addr, Entry>> sortedEntries() const;

    /** Per-home-controller contention counters (observability). */
    struct HomeCounters
    {
        std::uint64_t requests = 0;    ///< transactions serialized here
        std::uint64_t queueCycles = 0; ///< total queuing delay imposed
    };

    const std::vector<HomeCounters> &homeCounters() const { return hctrs_; }

    /**
     * Register contention counters under "<prefix>.home<i>.*" plus
     * machine-wide totals; not cleared by reset(), only by resetStats().
     */
    void registerStats(obs::Registry &reg, const std::string &prefix) const;

  private:
    const PlacementPolicy *placement_ = nullptr; ///< borrowed, optional
    unsigned nnodes_;
    std::size_t lineBytes_;
    std::size_t pageBytes_;
    Addr privateBase_;
    Addr privateStride_;
    LatencyConfig lat_;
    std::unordered_map<Addr, Entry> entries_;
    std::vector<Cycles> controllerFree_; // per home node
    std::vector<HomeCounters> hctrs_;    // per home node
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_DIRECTORY_HH
