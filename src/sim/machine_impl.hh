/**
 * @file
 * Bodies of Machine's port-templated access pipelines.
 *
 * Included only by machine.cc (SeqPort instantiation — the reference
 * engine) and par_engine.cc (the parallel engine's overlay port). The
 * Port parameter isolates every touch of *shared* machine state:
 *
 *  - entryView(line)      read the directory entry for a line
 *  - controller(home, t)  serialize at a home controller, get the delay
 *  - backgroundOccupy     occupy a controller without stalling (writeback)
 *  - applyReadFill / applyStore / applyDrop / applyPrefetchShare
 *                         the directory/remote-cache mutation operators
 *  - span                 timeline emission
 *
 * A processor's own node state (L1, L2, write buffer, prefetch table,
 * ProcRun clock and stats) is always touched directly — it is only ever
 * accessed from that processor's pipeline. Templates (not virtuals) keep
 * the sequential engine's hot path free of indirect calls: with SeqPort
 * every port operation inlines to the direct state access the pre-port
 * code performed, so the reference engine is bit-for-bit and
 * cycle-for-cycle unchanged.
 */

#ifndef DSS_SIM_MACHINE_IMPL_HH
#define DSS_SIM_MACHINE_IMPL_HH

#include "sim/machine.hh"

#include "obs/timeline.hh"
#include "sim/fault.hh"

namespace dss {
namespace sim {

/**
 * The sequential engine's port: reads and writes the live shared state in
 * place. Mutation operators re-derive their decisions from the live
 * directory entry, which in a sequential replay is exactly the entry the
 * pipeline just looked at.
 */
struct Machine::SeqPort
{
    Machine &m;

    Directory::Entry
    entryView(Addr l2_line)
    {
        // entry() creates the entry lazily, as the pre-port code did; the
        // copy is safe because nothing intervenes before the apply step.
        return m.dir_.entry(l2_line);
    }

    Cycles
    controller(ProcId home, Cycles arrival)
    {
        return m.dir_.acquireController(home, arrival);
    }

    void
    backgroundOccupy(ProcId home, Cycles arrival)
    {
        m.dir_.acquireController(home, arrival);
    }

    void applyReadFill(ProcId p, Addr l2_line)
    {
        m.applyReadFillDir(p, l2_line);
    }

    void
    applyStore(ProcId p, Addr l2_line, WordMask wmask)
    {
        m.applyStoreDir(p, l2_line, wmask);
    }

    void applyDrop(ProcId p, Addr l2_line)
    {
        m.dropFromDirectory(p, l2_line);
    }

    void applyPrefetchShare(ProcId p, Addr l2_line)
    {
        m.applyPrefetchShareDir(p, l2_line);
    }

    void
    span(ProcId p, obs::SpanKind k, Cycles start, Cycles end)
    {
        m.span(p, k, start, end);
    }
};

template <typename Port>
void
Machine::fillCoherentT(Port &port, ProcId p, Addr addr, bool dirty)
{
    Node &n = *nodes_[p];
    Cache::Victim v = n.coh().fill(addr, dirty);
    if (!v.valid)
        return;
    // Inclusion: no upper level may keep sublines of an evicted
    // coherent-level line.
    invalidateUpperLevels(p, v.lineAddr, /*coherence=*/false);
    port.applyDrop(p, v.lineAddr);
    if (v.dirty) {
        // Background writeback occupies the victim's home controller but
        // does not stall the processor.
        port.backgroundOccupy(dir_.homeOf(v.lineAddr),
                              runs_.empty() ? 0 : runs_[p].clock);
    }
}

template <typename Port>
void
Machine::faultEvictT(Port &port, ProcId p, Addr addr)
{
    Node &n = *nodes_[p];
    const Addr l2_line = n.coh().lineAddrOf(addr);
    if (!n.coh().contains(l2_line))
        return;
    n.coh().invalidate(l2_line, /*coherence=*/false);
    invalidateUpperLevels(p, l2_line, /*coherence=*/false);
    // Keep the directory agreeing with the caches — the invariant
    // checker must see no difference between injected and organic
    // evictions.
    port.applyDrop(p, l2_line);
}

template <typename Port>
Machine::ReadOutcome
Machine::readAccessT(Port &port, ProcId p, Addr addr, DataClass cls,
                     unsigned size)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    ProcStats &st = r.stats;
    const std::size_t nlev = nlev_;
    const Addr l1_line = n.l1().lineAddrOf(addr);
    const Addr l2_line = n.coh().lineAddrOf(addr);

    ++st.reads;

    // Loads are satisfied by a matching store still in the write buffer.
    if (n.wb.containsLine(l1_line, r.clock)) {
        ++st.l1Hits();
        return {cfg_.lat.l1Hit};
    }

    if (n.l1().access(addr)) {
        ++st.l1Hits();
        if (!n.prefetched.empty()) {
            auto pf = n.prefetched.find(l1_line);
            if (pf != n.prefetched.end()) {
                ++st.prefetchesUseful;
                // The prefetch may still be in flight: wait out the
                // remainder.
                Cycles extra =
                    pf->second > r.clock ? pf->second - r.clock : 0;
                n.prefetched.erase(pf);
                return {cfg_.lat.l1Hit + extra};
            }
        }
        return {cfg_.lat.l1Hit};
    }

    st.l1Misses().add(cls, n.l1().classifyMiss(addr));
    ++st.l2Accesses();

    // Walk the intermediate levels (none on a two-level chain). A hit
    // there is a clean local copy under strict inclusion: no directory
    // work, just the level's round trip.
    std::size_t hit_lvl = 0;
    for (std::size_t lvl = 1; lvl + 1 < nlev; ++lvl) {
        if (lvl > 1)
            ++st.levelAccesses[lvl];
        if (n.caches[lvl].access(addr)) {
            ++st.levelHits[lvl];
            hit_lvl = lvl;
            break;
        }
        st.levelMisses[lvl].add(cls, n.caches[lvl].classifyMiss(addr));
    }

    Cycles latency;
    if (hit_lvl) {
        latency = levelHitLat_[hit_lvl];
        fillIntermediates(p, addr); // refill the levels above the hit
    } else {
        if (nlev > 2)
            ++st.levelAccesses[nlev - 1];
        if (n.coh().access(addr)) {
            ++st.levelHits[nlev - 1];
            latency = levelHitLat_[nlev - 1];
        } else {
            const MissType mt = n.coh().classifyMiss(addr);
            st.levelMisses[nlev - 1].add(cls, mt);
            if (sharing_ && mt == MissType::Cohe)
                classifyCoheMiss(st, p, addr, size, l2_line);
            const Directory::Entry v = port.entryView(l2_line);
            const ProcId home = dir_.homeOf(l2_line);
            const bool dirty_else =
                v.state == Directory::State::Dirty && v.owner != p;
            st.hopsByGroup[static_cast<std::size_t>(groupOf(cls))]
                          [Directory::hopClass(p, home, v.owner,
                                               dirty_else)]++;
            const Cycles qdelay = port.controller(home, r.clock);
            latency =
                dir_.transactionLatency(p, home, v.owner, dirty_else) +
                qdelay;
            port.applyReadFill(p, l2_line);
            fillCoherentT(port, p, addr, /*dirty=*/false);
        }
        if (nlev > 2)
            fillIntermediates(p, addr);
    }
    fillL1(p, addr);

    // Sequential prefetch, triggered by primary-cache read misses on
    // database data: fetch the next prefetchDegree L1 lines into the L1
    // (paper Section 6). Miss-triggered issue reproduces the paper's
    // measured effectiveness — prefetching removes about a third of the
    // Data stall rather than hiding the whole stream.
    if (cfg_.prefetchData && cls == DataClass::Data)
        issuePrefetchesT(port, p, addr);

    return {latency};
}

template <typename Port>
Cycles
Machine::writeTransactionT(Port &port, ProcId p, Addr addr, DataClass cls,
                           unsigned size)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    const Addr l2_line = n.coh().lineAddrOf(addr);
    const Directory::Entry v = port.entryView(l2_line);
    const ProcId home = dir_.homeOf(l2_line);
    const auto grp = static_cast<std::size_t>(groupOf(cls));

    Cycles drain;
    if (n.coh().contains(l2_line)) {
        if (v.state == Directory::State::Dirty && v.owner == p) {
            // Already exclusively owned: drain straight into the
            // coherent level.
            drain = cohHitLat_;
        } else {
            // Upgrade: invalidate the other sharers via the home node.
            r.stats.hopsByGroup[grp]
                [Directory::hopClass(p, home, p, false)]++;
            const Cycles qdelay = port.controller(home, r.clock);
            drain = dir_.transactionLatency(p, home, p, false) + qdelay;
        }
        n.coh().access(addr, /*set_dirty=*/true);
    } else {
        // Write-allocate miss: obtain an exclusive copy. Stores allocate
        // only at the coherence point; intermediate levels are read-side
        // structures and pick the line up on the next read miss.
        const bool dirty_else =
            v.state == Directory::State::Dirty && v.owner != p;
        r.stats.hopsByGroup[grp]
            [Directory::hopClass(p, home, v.owner, dirty_else)]++;
        const Cycles qdelay = port.controller(home, r.clock);
        drain = dir_.transactionLatency(p, home, v.owner, dirty_else) +
                qdelay;
        fillCoherentT(port, p, addr, /*dirty=*/true);
    }
    port.applyStore(p, l2_line,
                    sharing_ ? wordMaskOf(addr, size, l2_line,
                                          cfg_.coherent().lineBytes)
                             : WordMask{0});

    // The store (re)established exclusive ownership: any pending upper-
    // level coherence marks on this line's sublines are repaid by this
    // very transaction. The write-through L1 never allocates on a store,
    // so without this the next read of an invalidated subline — a hit on
    // our own fresh exclusive copy — would classify Cohe a second time,
    // double-counting the upgrade.
    for (std::size_t u = 0; u + 1 < n.caches.size(); ++u)
        for (Addr a = l2_line; a < l2_line + cfg_.coherent().lineBytes;
             a += cfg_.levels[u].lineBytes)
            n.caches[u].clearCoherenceMark(a);

    // Upper levels stay write-through: a resident line is updated in
    // place (stays valid); a missing line is not allocated.
    for (std::size_t u = 0; u + 1 < n.caches.size(); ++u)
        n.caches[u].access(addr);
    return drain;
}

template <typename Port>
Cycles
Machine::rmwAccessT(Port &port, ProcId p, Addr addr, DataClass cls,
                    unsigned size)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    ProcStats &st = r.stats;
    const std::size_t nlev = nlev_;
    const Addr l2_line = n.coh().lineAddrOf(addr);

    ++st.reads;
    const bool l1hit = n.l1().access(addr);
    if (l1hit) {
        ++st.l1Hits();
    } else {
        st.l1Misses().add(cls, n.l1().classifyMiss(addr));
        ++st.l2Accesses();
        // Intermediate-level bookkeeping: the lookup passes through on
        // its way to the coherence point, where the atomic resolves.
        for (std::size_t lvl = 1; lvl + 1 < nlev; ++lvl) {
            if (lvl > 1)
                ++st.levelAccesses[lvl];
            if (n.caches[lvl].access(addr)) {
                ++st.levelHits[lvl];
                break;
            }
            st.levelMisses[lvl].add(cls,
                                    n.caches[lvl].classifyMiss(addr));
        }
        if (nlev > 2)
            ++st.levelAccesses[nlev - 1];
    }

    const Directory::Entry v = port.entryView(l2_line);
    const ProcId home = dir_.homeOf(l2_line);
    const bool l2has = n.coh().contains(l2_line);

    Cycles latency;
    if (l2has && v.state == Directory::State::Dirty && v.owner == p) {
        // Exclusive at our coherent level: the atomic completes there.
        if (!l1hit)
            ++st.levelHits[nlev - 1];
        n.coh().access(addr, /*set_dirty=*/true);
        latency = cohHitLat_;
    } else {
        if (!l2has && !l1hit) {
            const MissType mt = n.coh().classifyMiss(addr);
            st.levelMisses[nlev - 1].add(cls, mt);
            if (sharing_ && mt == MissType::Cohe)
                classifyCoheMiss(st, p, addr, size, l2_line);
        }
        const bool dirty_else =
            v.state == Directory::State::Dirty && v.owner != p;
        st.hopsByGroup[static_cast<std::size_t>(groupOf(cls))]
                      [Directory::hopClass(p, home, v.owner, dirty_else)]++;
        const Cycles qdelay = port.controller(home, r.clock);
        latency = dir_.transactionLatency(p, home, v.owner, dirty_else) +
                  qdelay;
        if (l2has)
            n.coh().access(addr, /*set_dirty=*/true);
        else
            fillCoherentT(port, p, addr, /*dirty=*/true);
        port.applyStore(p, l2_line,
                        sharing_ ? wordMaskOf(addr, size, l2_line,
                                              cfg_.coherent().lineBytes)
                                 : WordMask{0});
        // Same repayment rule as writeTransactionT: the RMW acquired
        // exclusive ownership, so pending upper-level coherence marks on
        // the line's sublines are settled by this transaction.
        for (std::size_t u = 0; u + 1 < nlev; ++u)
            for (Addr a = l2_line; a < l2_line + cfg_.coherent().lineBytes;
                 a += cfg_.levels[u].lineBytes)
                n.caches[u].clearCoherenceMark(a);
    }
    if (!l1hit) {
        if (nlev > 2)
            fillIntermediates(p, addr);
        fillL1(p, addr);
    }
    return latency;
}

template <typename Port>
void
Machine::issuePrefetchesT(Port &port, ProcId p, Addr addr)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    const Addr l1_line = n.l1().lineAddrOf(addr);
    Cycles issue = r.clock;
    for (unsigned i = 1; i <= cfg_.prefetchDegree; ++i) {
        const Addr a = l1_line + i * cfg_.l1().lineBytes;
        if (n.l1().contains(a))
            continue;
        const Addr l2_line = n.coh().lineAddrOf(a);
        Cycles ready = issue + cohHitLat_;
        if (!n.coh().contains(l2_line)) {
            const Directory::Entry v = port.entryView(l2_line);
            if (v.state == Directory::State::Dirty && v.owner != p)
                continue; // keep the prefetcher out of dirty remote lines
            // The fetch occupies the home controller (contention) but the
            // processor does not wait for it.
            const ProcId home = dir_.homeOf(l2_line);
            const Cycles qdelay = port.controller(home, issue);
            ready = issue + qdelay +
                    dir_.transactionLatency(p, home, v.owner, false);
            port.applyPrefetchShare(p, l2_line);
            fillCoherentT(port, p, a, /*dirty=*/false);
        }
        if (nlev_ > 2)
            fillIntermediates(p, a);
        fillL1(p, a);
        n.prefetched[n.l1().lineAddrOf(a)] = ready;
        // Prefetches leave the node back to back, one per miss-port slot.
        issue += cfg_.lat.controllerOccupancy;
        ++r.stats.prefetchesIssued;
    }
}

template <typename Port>
void
Machine::doReadT(Port &port, ProcId p, const TraceEntry &e)
{
    ProcRun &r = runs_[p];
    Cycles injected = 0;
    if (fault_) {
        // Decisions are keyed on (proc, trace position): both engines
        // visit each Read position exactly once, so the schedule is
        // engine- and thread-count-independent.
        if (fault_->evictAt(p, r.pos))
            faultEvictT(port, p, e.addr);
        injected = fault_->readDelay(p, r.pos);
    }
    ReadOutcome o = readAccessT(port, p, e.addr, e.cls, e.size);
    const Cycles stall =
        (o.latency > cfg_.lat.l1Hit ? o.latency - cfg_.lat.l1Hit : 0) +
        injected;
    r.stats.busy += cfg_.issueCyclesPerRef;
    r.stats.memStall += stall;
    r.stats.memStallByGroup[static_cast<std::size_t>(groupOf(e.cls))] +=
        stall;
    port.span(p, obs::SpanKind::Busy, r.clock,
              r.clock + cfg_.issueCyclesPerRef);
    port.span(p, obs::SpanKind::Mem, r.clock + cfg_.issueCyclesPerRef,
              r.clock + cfg_.issueCyclesPerRef + stall);
    r.clock += cfg_.issueCyclesPerRef + stall;
}

template <typename Port>
void
Machine::doWriteT(Port &port, ProcId p, const TraceEntry &e)
{
    Node &n = *nodes_[p];
    ProcRun &r = runs_[p];
    ++r.stats.writes;
    r.stats.busy += cfg_.issueCyclesPerRef;
    port.span(p, obs::SpanKind::Busy, r.clock,
              r.clock + cfg_.issueCyclesPerRef);
    r.clock += cfg_.issueCyclesPerRef;

    const Cycles drain = writeTransactionT(port, p, e.addr, e.cls, e.size);
    const Cycles stall =
        n.wb.push(r.clock, drain, n.l1().lineAddrOf(e.addr));
    if (stall) {
        ++r.stats.wbOverflows;
        r.stats.memStall += stall;
        r.stats.memStallByGroup[static_cast<std::size_t>(groupOf(e.cls))] +=
            stall;
        port.span(p, obs::SpanKind::Mem, r.clock, r.clock + stall);
        r.clock += stall;
    }
    if (fault_) {
        // WbStall storm: the buffer's drain path is congested and the
        // processor stalls as if it had overflowed.
        const Cycles extra = fault_->wbStall(p, r.pos);
        if (extra) {
            r.stats.memStall += extra;
            r.stats.memStallByGroup[static_cast<std::size_t>(
                groupOf(e.cls))] += extra;
            port.span(p, obs::SpanKind::Mem, r.clock, r.clock + extra);
            r.clock += extra;
        }
    }
}

template <typename Port>
void
Machine::preemptReleaseT(Port &port, ProcId p)
{
    if (!fault_)
        return;
    ProcRun &r = runs_[p];
    const Cycles stretch = fault_->holdStretch(p, r.pos);
    if (!stretch)
        return;
    // The holder is "preempted" just before its release store: the
    // critical section stretches and every spinner keeps spinning. The
    // stretch is the holder's own synchronization cost.
    r.stats.syncStall += stretch;
    port.span(p, obs::SpanKind::Sync, r.clock, r.clock + stretch);
    r.clock += stretch;
}

template <typename Port>
void
Machine::doBusyT(Port &port, ProcId p, const TraceEntry &e)
{
    ProcRun &r = runs_[p];
    r.stats.busy += e.extra;
    // Untraced private stack/static references ride along with the
    // busy instructions and always hit (paper Section 4.2, about one
    // reference per four instructions); count them so miss rates
    // share the paper's denominator.
    r.stats.assumedHitReads += e.extra / 4;
    port.span(p, obs::SpanKind::Busy, r.clock, r.clock + e.extra);
    r.clock += e.extra;
}

} // namespace sim
} // namespace dss

#endif // DSS_SIM_MACHINE_IMPL_HH
