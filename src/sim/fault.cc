#include "sim/fault.hh"

#include <algorithm>
#include <cmath>

#include "obs/registry.hh"

namespace dss {
namespace sim {

std::string_view
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::LatencySpike: return "latency_spike";
      case FaultKind::Eviction: return "eviction";
      case FaultKind::WbStall: return "wb_stall";
      case FaultKind::LockPreempt: return "lock_preempt";
      case FaultKind::QueryAbort: return "query_abort";
      case FaultKind::NodeFailure: return "node_failure";
    }
    return "?";
}

namespace {

/** splitmix64 finalizer: a cheap, well-mixed 64-bit hash. */
constexpr std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Uniform [0, 1) from the top 53 bits of a hash. */
constexpr double
unit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

bool
FaultPlan::fires(FaultKind k, ProcId p, std::uint64_t pos) const
{
    if (cfg_.rate <= 0.0 || !cfg_.enabled(k) || p >= kMaxProcs)
        return false;
    const std::uint64_t h =
        mix(cfg_.seed ^ mix(runIndex_ * 0x100000001B3ull ^
                            (static_cast<std::uint64_t>(p) << 56) ^
                            (pos << 3) ^
                            static_cast<std::uint64_t>(k)));
    return unit(h) < cfg_.rate;
}

void
FaultPlan::record(FaultKind k, ProcId p, std::uint64_t pos, Cycles c)
{
    perProc_[p].log.push_back({k, p, runIndex_, pos, c});
}

Cycles
FaultPlan::readDelay(ProcId p, std::uint64_t pos)
{
    if (!fires(FaultKind::LatencySpike, p, pos))
        return 0;
    record(FaultKind::LatencySpike, p, pos, cfg_.spikeCycles);
    return cfg_.spikeCycles;
}

bool
FaultPlan::evictAt(ProcId p, std::uint64_t pos)
{
    if (!fires(FaultKind::Eviction, p, pos))
        return false;
    record(FaultKind::Eviction, p, pos, 0);
    return true;
}

Cycles
FaultPlan::wbStall(ProcId p, std::uint64_t pos)
{
    if (!fires(FaultKind::WbStall, p, pos))
        return 0;
    record(FaultKind::WbStall, p, pos, cfg_.wbStallCycles);
    return cfg_.wbStallCycles;
}

Cycles
FaultPlan::holdStretch(ProcId p, std::uint64_t pos)
{
    if (!fires(FaultKind::LockPreempt, p, pos))
        return 0;
    record(FaultKind::LockPreempt, p, pos, cfg_.preemptCycles);
    return cfg_.preemptCycles;
}

void
FaultPlan::scheduleQuery()
{
    const std::uint64_t q = queryIndex_++;
    abortsRemaining_ = 0;
    if (cfg_.rate <= 0.0 || !cfg_.enabled(FaultKind::QueryAbort) ||
        cfg_.maxAbortsPerQuery == 0)
        return;
    const std::uint64_t h =
        mix(cfg_.seed ^ mix(0xABBAull ^ (q << 8)));
    if (unit(h) >= cfg_.rate)
        return;
    abortsRemaining_ =
        1 + static_cast<unsigned>(mix(h) % cfg_.maxAbortsPerQuery);
    aborts_ += abortsRemaining_;
    // Query aborts live outside any processor's trace; log them on the
    // plan's slot 0 with the query index as the position.
    perProc_[0].log.push_back(
        {FaultKind::QueryAbort, 0, runIndex_, q, abortsRemaining_});
}

bool
FaultPlan::abortScheduled()
{
    if (abortsRemaining_ == 0)
        return false;
    --abortsRemaining_;
    return true;
}

void
FaultPlan::recordRetry(Cycles backoff)
{
    ++retries_;
    backoffCycles_ += backoff;
}

std::optional<FaultPlan::Outage>
FaultPlan::nodeOutage(ProcId p, unsigned k) const
{
    if (cfg_.rate <= 0.0 || !cfg_.enabled(FaultKind::NodeFailure) ||
        p >= kMaxProcs)
        return std::nullopt;
    const bool permanent = cfg_.nodeDownCycles == 0;
    if (permanent && k > 0)
        return std::nullopt; // a dead node stays dead
    const double mean_up =
        static_cast<double>(cfg_.nodeMeanUpCycles) / cfg_.rate;
    Cycles start = 0;
    for (unsigned i = 0; i <= k; ++i) {
        const std::uint64_t h = mix(
            cfg_.seed ^ mix(0xF01Dull ^
                            (static_cast<std::uint64_t>(p) << 40) ^
                            (static_cast<std::uint64_t>(i) << 4)));
        // Exponential up-time gap, floored at one cycle so windows can
        // never collide even at rate 1.0.
        const double gap = -mean_up * std::log(1.0 - unit(h));
        start += std::max<Cycles>(static_cast<Cycles>(gap), 1);
        if (i > 0)
            start += cfg_.nodeDownCycles; // the previous down interval
    }
    Outage o;
    o.start = start;
    o.permanent = permanent;
    o.end = permanent ? kNever : start + cfg_.nodeDownCycles;
    return o;
}

void
FaultPlan::recordNodeFailure(ProcId p, std::uint64_t pos, Cycles down)
{
    if (p >= kMaxProcs)
        return;
    record(FaultKind::NodeFailure, p, pos, down);
}

std::vector<FaultPlan::Event>
FaultPlan::schedule() const
{
    std::vector<Event> out;
    for (const PerProc &pp : perProc_)
        out.insert(out.end(), pp.log.begin(), pp.log.end());
    // Processor-major concatenation is already deterministic; sort by
    // (run, proc, pos, kind) so the order is also canonical.
    std::sort(out.begin(), out.end(),
              [](const Event &a, const Event &b) {
                  if (a.run != b.run)
                      return a.run < b.run;
                  if (a.proc != b.proc)
                      return a.proc < b.proc;
                  if (a.pos != b.pos)
                      return a.pos < b.pos;
                  return static_cast<unsigned>(a.kind) <
                         static_cast<unsigned>(b.kind);
              });
    return out;
}

FaultPlan::Counters
FaultPlan::counters() const
{
    Counters c;
    for (const PerProc &pp : perProc_) {
        for (const Event &e : pp.log) {
            ++c.byKind[static_cast<std::size_t>(e.kind)];
            ++c.injected;
        }
    }
    c.aborts = aborts_;
    c.retries = retries_;
    c.backoffCycles = backoffCycles_;
    return c;
}

void
FaultPlan::registerStats(obs::Registry &reg,
                         const std::string &prefix) const
{
    for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        reg.addCounter(
            obs::metricName(prefix, std::string("injected.") +
                                        std::string(faultKindName(kind))),
            [this, k] { return counters().byKind[k]; });
    }
    reg.addCounter(obs::metricName(prefix, "injected.total"),
                   [this] { return counters().injected; });
    reg.addCounter(obs::metricName(prefix, "aborts"),
                   [this] { return aborts_; });
    reg.addCounter(obs::metricName(prefix, "retries"),
                   [this] { return retries_; });
    reg.addCounter(obs::metricName(prefix, "backoff_cycles"),
                   [this] { return backoffCycles_; });
}

obs::Json
FaultPlan::toJson() const
{
    obs::Json j = obs::Json::object();
    j["seed"] = cfg_.seed;
    j["rate"] = cfg_.rate;
    const Counters c = counters();
    obs::Json inj = obs::Json::object();
    for (std::size_t k = 0; k < kNumFaultKinds; ++k)
        inj[std::string(faultKindName(static_cast<FaultKind>(k)))] =
            c.byKind[k];
    inj["total"] = c.injected;
    j["injected"] = std::move(inj);
    j["aborts"] = c.aborts;
    j["retries"] = c.retries;
    j["backoff_cycles"] = c.backoffCycles;
    return j;
}

} // namespace sim
} // namespace dss
