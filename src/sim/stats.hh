/**
 * @file
 * Simulation statistics, organized to regenerate the paper's figures:
 * execution-time breakdown (Busy/Mem/MSync, Fig 6a), memory-stall
 * decomposition by structure group (Fig 6b, 9, 11), and read-miss counts
 * per cache level x data class x miss type (Fig 7, 8, 10, 12).
 *
 * The per-cache-level counters are arrays indexed by hierarchy level
 * (sim/hierarchy.hh), sized for the deepest chain a machine may declare.
 * The legacy two-level names (l1Hits, l2Misses, ...) survive as inline
 * reference accessors onto levels 0 and 1, so every report and figure
 * computation reads exactly the slots it always read — on a two-level
 * machine the refactor is invisible, byte for byte.
 */

#ifndef DSS_SIM_STATS_HH
#define DSS_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/addr.hh"
#include "sim/cache.hh"
#include "sim/hierarchy.hh"

namespace dss {
namespace sim {

/** Read-miss counters for one cache level. */
struct MissTable
{
    std::array<std::array<std::uint64_t, kNumMissTypes>, kNumDataClasses>
        count = {};

    void
    add(DataClass c, MissType t, std::uint64_t n = 1)
    {
        count[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)] += n;
    }

    std::uint64_t
    of(DataClass c, MissType t) const
    {
        return count[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)];
    }

    std::uint64_t byClass(DataClass c) const;
    std::uint64_t byGroup(ClassGroup g) const;
    std::uint64_t byGroupAndType(ClassGroup g, MissType t) const;
    std::uint64_t total() const;

    MissTable &operator+=(const MissTable &o);

    /** Cell-wise subtraction (epoch deltas; @p o must be <= *this). */
    MissTable &operator-=(const MissTable &o);
};

/** Per-processor statistics. */
struct ProcStats
{
    Cycles busy = 0;      ///< issue + compute cycles
    Cycles memStall = 0;  ///< read-miss + write-buffer-overflow stall
    Cycles syncStall = 0; ///< metalock acquire/spin/release time (MSync)

    /** Mem stall attributed to the structure group missed on (Fig 6b). */
    std::array<Cycles, kNumClassGroups> memStallByGroup = {};

    /** Hop classes of hopsByGroup: local / 2-hop / 3-hop transactions. */
    static constexpr std::size_t kNumHopClasses = 3;

    /**
     * Demand directory transactions (read miss, write upgrade/allocate,
     * lock RMW) issued by this processor, by structure group x hop class
     * — the placement layer's figure of merit. Background traffic
     * (prefetch fills, victim writebacks) is not counted: it occupies
     * controllers but never stalls the processor. Deliberately absent
     * from obs::toJson(ProcStats), whose byte-exact output the golden
     * fixtures pin; exported via the counter registry instead.
     */
    std::array<std::array<std::uint64_t, kNumHopClasses>, kNumClassGroups>
        hopsByGroup = {};

    std::uint64_t reads = 0;   ///< traced loads issued
    std::uint64_t writes = 0;  ///< traced stores issued

    /**
     * References to private stack/static data, which the paper's scaling
     * methodology assumes always hit (Section 4.2). They are not traced;
     * the Machine infers them from Busy time (about one reference per
     * three instructions) so miss *rates* use the same denominator the
     * paper's do.
     */
    std::uint64_t assumedHitReads = 0;

    /**
     * Depth of the hierarchy these counters describe. Machine::run stamps
     * it; aggregation adopts the deepest operand. Slots at or past it are
     * structurally zero.
     */
    std::uint8_t levels = 2;

    /** Read hits per level; [0] is the primary cache. */
    std::array<std::uint64_t, kMaxCacheLevels> levelHits = {};

    /**
     * Read lookups that reached each level past the primary ([0] is
     * unused — level-0 traffic is reads/levelHits[0]). On the baseline
     * chain levelAccesses[1] is the legacy "L1 read misses reaching the
     * L2".
     */
    std::array<std::uint64_t, kMaxCacheLevels> levelAccesses = {};

    /** Read misses per level, classified Cold/Conf/Cohe. */
    std::array<MissTable, kMaxCacheLevels> levelMisses;

    std::uint64_t wbOverflows = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0; ///< prefetched lines hit before evict

    /**
     * True/false-sharing split of the coherent-level coherence misses,
     * populated only when word-granular sharing tracking is enabled
     * (Machine::enableSharing); both stay zero otherwise. When enabled,
     * l2CoheTrue + l2CoheFalse equals the Cohe column of the coherent
     * level's MissTable summed over classes, by construction. Like
     * hopsByGroup, deliberately absent from obs::toJson(ProcStats) —
     * exported via the counter registry as proc*.miss.cohe.{true,false}.
     */
    std::uint64_t l2CoheTrue = 0;
    std::uint64_t l2CoheFalse = 0;

    /** @name Legacy two-level accessors
     * Reference views onto the per-level arrays under the names the
     * figure code and the golden reports have always used. On a chain of
     * three or more levels, "l2" still means level 1 (the cache named
     * L2); the coherent level's counters are cohMisses()/levelHits. */
    ///@{
    std::uint64_t &l1Hits() { return levelHits[0]; }
    std::uint64_t l1Hits() const { return levelHits[0]; }
    std::uint64_t &l2Hits() { return levelHits[1]; }
    std::uint64_t l2Hits() const { return levelHits[1]; }
    /** L1 read misses reaching the L2. */
    std::uint64_t &l2Accesses() { return levelAccesses[1]; }
    std::uint64_t l2Accesses() const { return levelAccesses[1]; }
    MissTable &l1Misses() { return levelMisses[0]; }
    const MissTable &l1Misses() const { return levelMisses[0]; }
    MissTable &l2Misses() { return levelMisses[1]; }
    const MissTable &l2Misses() const { return levelMisses[1]; }
    ///@}

    /** The coherent (last) level's miss table. */
    MissTable &cohMisses() { return levelMisses[levels - 1]; }
    const MissTable &cohMisses() const { return levelMisses[levels - 1]; }

    Cycles totalCycles() const { return busy + memStall + syncStall; }

    /** PMem of Figs 9/11: stall on private structures. */
    Cycles pmem() const
    {
        return memStallByGroup[static_cast<std::size_t>(ClassGroup::Priv)];
    }

    /** SMem of Figs 9/11: stall on shared structures. */
    Cycles smem() const { return memStall - pmem(); }

    /** Demand transactions of one hop class, summed over groups. */
    std::uint64_t hopsOfClass(std::size_t hop) const;

    /** All demand directory transactions (every group, every hop). */
    std::uint64_t hopsTotal() const;

    /** Primary-cache read miss rate (paper Section 5.1). */
    double l1MissRate() const;

    /** Secondary-cache global miss rate: L2 misses / all loads. */
    double l2GlobalMissRate() const;

    ProcStats &operator+=(const ProcStats &o);

    /**
     * Field-wise subtraction. Used by the epoch sampler to turn cumulative
     * snapshots into per-epoch deltas; @p o must be a component-wise lower
     * bound of *this (an earlier snapshot of the same counters).
     */
    ProcStats &operator-=(const ProcStats &o);
};

/** Whole-machine statistics for one simulated run. */
struct SimStats
{
    std::vector<ProcStats> procs;

    /** Sum over processors. */
    ProcStats aggregate() const;

    /** Longest processor time = parallel execution time. */
    Cycles executionTime() const;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_STATS_HH
