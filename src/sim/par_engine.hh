/**
 * @file
 * The barrier-synchronized parallel simulation engine (EngineKind::Par).
 *
 * Simulated time is cut into windows of EngineConfig::windowCycles. A
 * window is simulated as a sequence of sub-rounds, each with two phases:
 *
 *  Phase A (parallel). Every runnable processor whose clock is inside the
 *  window replays its trace on a worker thread. The pipeline mutates only
 *  its own node (L1, L2, write buffer, prefetch table, clock, stats) and
 *  *reads* the shared state — directory entries, home-controller
 *  occupancy — through an overlay: the live value frozen at the last
 *  barrier, patched with the processor's own not-yet-applied mutations.
 *  Every shared-state mutation (directory transitions, remote-cache
 *  invalidations, controller occupancy, timeline spans) is parked in the
 *  processor's mailbox instead of applied. A processor stops at the
 *  window end, at the end of its trace, or at a metalock acquire (whose
 *  outcome depends on the other processors).
 *
 *  Phase B (serial barrier). The coordinator merges all mailboxes and
 *  applies the parked operations against the live shared state in
 *  sorted order — by simulated cycle, then processor id, then program
 *  order — using the same mutation operators the sequential engine uses.
 *  Metalock operations run here too, through the sequential engine's own
 *  doLockAcq/releaseLock code, with a small event queue so that a
 *  test&set completion or a lock hand-off re-schedules the processor at
 *  its new clock within the same barrier.
 *
 * Sub-rounds repeat until no processor can advance inside the window
 * (all are past the window end, finished, or spinning on a lock), then
 * the window advances.
 *
 * Determinism: a processor's phase-A replay depends only on the live
 * shared state at the previous barrier and on its own trace — never on
 * the concurrent progress of other workers — and phase B applies parked
 * work in a totally ordered sequence. Both are independent of the host
 * thread count and of scheduling, so the simulation output (stats,
 * caches, directory, time-series, timeline) is bit-identical for any
 * `threads` value. The differential tests enforce this.
 *
 * Accuracy: within a window a processor does not observe the other
 * processors' same-window transactions (it sees them from the next
 * barrier on). Cross-processor interactions are therefore resolved with
 * up to one window of slack against the sequential reference; aggregate
 * counts that do not depend on interleaving (references, busy cycles)
 * match the sequential engine exactly. See DESIGN.md.
 */

#ifndef DSS_SIM_PAR_ENGINE_HH
#define DSS_SIM_PAR_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/directory.hh"
#include "sim/machine.hh"

namespace dss {
namespace sim {

class ParEngine
{
  public:
    ParEngine(Machine &m, const EngineConfig &cfg);
    ~ParEngine();

    ParEngine(const ParEngine &) = delete;
    ParEngine &operator=(const ParEngine &) = delete;

    /** Drive machine_.runs_ to completion. */
    void run(std::size_t nrun);

  private:
    /** One shared-state mutation parked during phase A. */
    struct ParkedOp
    {
        enum class Kind : std::uint8_t {
            ReadFill,      ///< applyReadFillDir(proc, addr)
            StoreDir,      ///< applyStoreDir(proc, addr)
            Drop,          ///< dropFromDirectory(proc, addr)
            PrefetchShare, ///< applyPrefetchShareDir(proc, addr)
            Occupy,        ///< controller at node `addr`: occupy(arrival),
                           ///< queueCycles += delay
            LockAcq,       ///< step the processor's pending LockAcq entry
            LockRel        ///< releaseLock(proc, {addr, cls}, clock)
        };

        Kind kind;
        ProcId proc;
        DataClass cls;       ///< LockRel only
        Addr addr;           ///< line address / home node for Occupy
        Cycles clock;        ///< processor clock at park time (sort key)
        Cycles arrival;      ///< Occupy only
        Cycles delay;        ///< Occupy only: delay charged in phase A
        std::uint32_t seq;   ///< per-processor program order (sort key)
        /** StoreDir only: words the store dirtied (sharing tracker). */
        WordMask wmask = 0;
    };

    struct SpanRec
    {
        obs::SpanKind kind;
        Cycles start;
        Cycles end;
    };

    /** Per-processor phase-A context (touched only by its worker). */
    struct ProcCtx
    {
        /** Overlay of directory entries this processor has (logically)
         * mutated since the last barrier. */
        std::unordered_map<Addr, Directory::Entry> dirDelta;
        /** Overlay of home-controller free times, ditto. */
        std::vector<Cycles> ctrlFree;
        std::vector<ParkedOp> mailbox;
        std::vector<SpanRec> spans;
        std::uint32_t seq = 0;
    };

    struct ParPort; // the Machine-pipeline port backed by ProcCtx

    /** Phase A for one processor. */
    void replayWindow(ProcId p, Cycles window_end);
    /** Phase B: drain all mailboxes at the barrier. */
    void applyBarrier();

    // ParPort backends (ParEngine is a friend of Machine; its nested
    // port delegates here so all private-state access sits in members).
    Directory::Entry portEntryView(ProcCtx &ctx, Addr line) const;
    Cycles portController(ProcCtx &ctx, ProcId p, ProcId home,
                          Cycles arrival);
    void portBackgroundOccupy(ProcCtx &ctx, ProcId p, ProcId home,
                              Cycles arrival);
    void portApplyReadFill(ProcCtx &ctx, ProcId p, Addr line);
    void portApplyStore(ProcCtx &ctx, ProcId p, Addr line, WordMask wmask);
    void portApplyDrop(ProcCtx &ctx, ProcId p, Addr line);
    void portApplyPrefetchShare(ProcCtx &ctx, ProcId p, Addr line);

    void park(ProcCtx &ctx, ParkedOp op);

    // Worker pool (started only when more than one worker is useful).
    void startWorkers(unsigned n);
    void workerLoop(unsigned idx);
    void phaseA(Cycles window_end);

    Machine &m_;
    EngineConfig cfg_;
    unsigned nworkers_ = 1;
    std::vector<ProcCtx> ctxs_;
    /** Processors runnable in the current sub-round (phase-A job). */
    std::vector<ProcId> jobProcs_;
    Cycles jobWindowEnd_ = 0;

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    std::uint64_t gen_ = 0;
    unsigned running_ = 0;
    bool stop_ = false;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_PAR_ENGINE_HH
