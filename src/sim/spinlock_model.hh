/**
 * @file
 * Dynamic metalock state for the Machine.
 *
 * Postgres95's metalocks (LockMgrLock, BufMgrLock, ...) are test&test&set
 * spinlocks on shared words. Traces record only acquire/release markers;
 * whether an acquire spins depends on the simulated interleaving, so the
 * Machine resolves contention at simulation time using this table. Waiting
 * time is charged to MSync; the lock-word loads/stores themselves go
 * through the caches and produce the LockSLock coherence misses of Fig 7.
 */

#ifndef DSS_SIM_SPINLOCK_MODEL_HH
#define DSS_SIM_SPINLOCK_MODEL_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/addr.hh"

namespace dss {
namespace obs {
class Registry;
} // namespace obs

namespace sim {

class LockTable
{
  public:
    /** Try to take the lock at @p word for @p proc. True on success. */
    bool tryAcquire(Addr word, ProcId proc);

    /** Queue @p proc as a waiter on @p word (lock must be held). */
    void addWaiter(Addr word, ProcId proc);

    /**
     * Release the lock at @p word (must be held by @p proc).
     * @return the next waiter granted the lock, or kNoWaiter.
     */
    static constexpr ProcId kNoWaiter = ~0u;
    ProcId release(Addr word, ProcId proc);

    /** True if @p word is currently held. */
    bool isHeld(Addr word) const;

    /** Holder of @p word (undefined if not held). */
    ProcId holder(Addr word) const;

    /** Number of queued waiters on @p word. */
    std::size_t waiters(Addr word) const;

    /** One lock's full state, for dumps and the invariant checker. */
    struct Info
    {
        Addr word = 0;
        bool held = false;
        ProcId holder = 0;
        std::deque<ProcId> waiters;
    };

    /** Snapshot of every tracked lock, sorted by word (deterministic). */
    std::vector<Info> snapshot() const;

    /** Test hook: mark @p word free without draining its waiter queue —
     * a lost grant the LockState invariant must flag. */
    void corruptDropHolderForTest(Addr word);

    /** Drop all lock state (between runs). */
    void reset() { locks_.clear(); }

    /** Lifetime contention counters (observability); survive reset(). */
    struct Counters
    {
        std::uint64_t acquires = 0;  ///< uncontended tryAcquire successes
        std::uint64_t waits = 0;     ///< addWaiter calls (contended path)
        std::uint64_t releases = 0;
        std::uint64_t handoffs = 0;  ///< releases granted to a waiter
    };

    const Counters &counters() const { return ctrs_; }

    /** Register the counters under "<prefix>.<leaf>" names. */
    void registerStats(obs::Registry &reg, const std::string &prefix) const;

  private:
    struct State
    {
        bool held = false;
        ProcId holderProc = 0;
        std::deque<ProcId> queue;
    };

    std::unordered_map<Addr, State> locks_;
    Counters ctrs_;
};

} // namespace sim
} // namespace dss

#endif // DSS_SIM_SPINLOCK_MODEL_HH
