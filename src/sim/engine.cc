#include "sim/engine.hh"

namespace dss {
namespace sim {

std::optional<EngineKind>
parseEngineKind(std::string_view name)
{
    if (name == "seq")
        return EngineKind::Seq;
    if (name == "par")
        return EngineKind::Par;
    return std::nullopt;
}

} // namespace sim
} // namespace dss
