/**
 * @file
 * B+-tree indices stored in 8 KB buffer blocks (Index-tagged).
 *
 * Index scans descend from the root with an in-page binary search and then
 * walk leaf pages through right-sibling links. Every page visit pins and
 * unpins through the BufferManager, so index scans exercise the full
 * metadata path (BufMgrLock, lookup hash, descriptors) — the behaviour the
 * paper attributes to Index queries. The upper levels of the tree are
 * re-read on every probe, which is the intra-query temporal locality the
 * paper measures on indices.
 *
 * Trees are bulk-loaded at setup from sorted (key, tid) runs; the studied
 * workload is read-only, as in the paper.
 */

#ifndef DSS_DB_BTREE_HH
#define DSS_DB_BTREE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "db/bufmgr.hh"
#include "db/common.hh"
#include "db/mem.hh"

namespace dss {
namespace obs {
class RegionMap;
} // namespace obs

namespace db {

class BTree
{
  public:
    using Key = std::int64_t;
    using Entry = std::pair<Key, Tid>;

    /**
     * @param index_rel Relation id of the index itself (distinct from the
     *                  indexed table's id).
     */
    BTree(RelId index_rel, BufferManager &bufmgr)
        : rel_(index_rel), bufmgr_(bufmgr)
    {}

    /** Bulk-load from entries sorted by key (duplicates allowed). Setup. */
    void build(TracedMemory &setup, const std::vector<Entry> &sorted);

    /**
     * Insert one (key, tid) at run time (update queries). Fully traced:
     * the descent, the in-page shift and any page splits all go through
     * the buffer manager and emit Index-class references. Splits allocate
     * fresh buffer blocks; the root splits like any other page.
     */
    void insert(TracedMemory &mem, Key key, Tid tid);

    /**
     * Streaming cursor over leaf entries. Keeps the current leaf pinned;
     * close() (or exhaustion) releases it.
     */
    class Cursor
    {
      public:
        /**
         * Advance to the next entry.
         * @return false at end of index.
         */
        bool next(TracedMemory &mem, Key &key, Tid &tid);

        /** Unpin the current leaf (idempotent). */
        void close(TracedMemory &mem);

        bool open() const { return block_ != -1; }

      private:
        friend class BTree;
        const BTree *tree_ = nullptr;
        BlockNo block_ = -1;  ///< current leaf block (-1: closed)
        sim::Addr page_ = 0;  ///< pinned leaf address
        std::uint16_t pos_ = 0;
    };

    /** Cursor positioned at the first entry with key >= @p key. */
    Cursor seek(TracedMemory &mem, Key key) const;

    /** Cursor at the leftmost entry (full index order scan). */
    Cursor begin(TracedMemory &mem) const;

    /** Collect the tids of every entry with exactly @p key. */
    std::vector<Tid> lookupAll(TracedMemory &mem, Key key) const;

    RelId relId() const { return rel_; }
    int height() const { return height_; }
    BlockNo rootBlock() const { return root_; }
    unsigned numPages() const { return numPages_; }

    /** Tree level of block @p blk: 1 = leaf, height() = root. */
    int levelOf(BlockNo blk) const { return pageLevel_[blk]; }

    /**
     * Register every tree page with the memory profiler's symbol map as
     * "<name> leaf blk N" or "<name> inner lvl L blk N" (@p name is the
     * index's catalog name). Pages resolve host-side via the buffer
     * manager; no traced references.
     */
    void describeRegions(obs::RegionMap &map, const std::string &name) const;

  private:
    // Page header layout.
    static constexpr sim::Addr kIsLeafOff = 0;   // u16
    static constexpr sim::Addr kNumKeysOff = 2;  // u16
    static constexpr sim::Addr kRightSibOff = 4; // i32, -1 = none
    static constexpr sim::Addr kEntriesOff = 16;
    static constexpr std::size_t kEntryBytes = 16;
    static constexpr std::uint16_t kMaxEntries =
        (kPageBytes - kEntriesOff) / kEntryBytes;

    sim::Addr entryAddr(sim::Addr page, std::uint16_t i) const
    {
        return page + kEntriesOff + i * kEntryBytes;
    }

    /** Binary search: first entry index with key >= @p key (traced). */
    std::uint16_t searchPage(TracedMemory &mem, sim::Addr page,
                             std::uint16_t nkeys, Key key) const;

    /** Outcome of a recursive insert: did the child split? */
    struct Split
    {
        bool happened = false;
        Key sepKey = 0;        ///< first key of the new right sibling
        BlockNo newBlock = -1; ///< the new right sibling
    };

    /** Allocate a fresh (empty) tree page at tree level @p level. */
    BlockNo allocPage(TracedMemory &mem, bool leaf, BlockNo right_sib,
                      int level);

    /** Shift entries [pos, nkeys) right by one and write a new entry. */
    void placeEntry(TracedMemory &mem, sim::Addr page, std::uint16_t nkeys,
                    std::uint16_t pos, Key key, std::int32_t v0,
                    std::int32_t v1);

    /** Split @p blk (pinned at @p page) and return the new sibling. */
    Split splitPage(TracedMemory &mem, BlockNo blk, sim::Addr page,
                    bool leaf, int level);

    /** Recursive insert into the subtree rooted at @p blk. */
    Split insertInto(TracedMemory &mem, BlockNo blk, int level, Key key,
                     Tid tid);

    /** Descend to the leaf that may contain @p key; returns pinned leaf. */
    BlockNo descend(TracedMemory &mem, Key key, sim::Addr *leaf_page) const;

    RelId rel_;
    BufferManager &bufmgr_;
    BlockNo root_ = -1;
    int height_ = 0;
    unsigned numPages_ = 0;
    std::vector<int> pageLevel_; ///< block -> tree level (symbolization)
};

} // namespace db
} // namespace dss

#endif // DSS_DB_BTREE_HH
