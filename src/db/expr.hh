/**
 * @file
 * Typed expression trees for predicates and arithmetic.
 *
 * Expressions evaluate against a Row, which reads attributes through
 * TracedMemory — so every attribute an expression touches shows up in the
 * trace against the tuple's DataClass (Data on heap pages, Priv on private
 * copies), exactly the access structure the paper analyzes.
 */

#ifndef DSS_DB_EXPR_HH
#define DSS_DB_EXPR_HH

#include <memory>
#include <vector>

#include "db/schema.hh"

namespace dss {
namespace db {

/** A tuple being evaluated: memory handle + address + layout. */
struct Row
{
    TracedMemory *mem = nullptr;
    sim::Addr base = 0;
    const Schema *schema = nullptr;

    Datum
    get(std::size_t idx) const
    {
        return readAttr(*mem, base, *schema, idx);
    }
};

enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };
enum class LogicOp { And, Or, Not };
enum class ArithOp { Add, Sub, Mul };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/** Immutable expression node. Build with the factory functions below. */
class Expr
{
  public:
    enum class Kind { Attr, Const, Cmp, Logic, Arith };

    /** Evaluate; numeric results are int64 or double, booleans int64 0/1. */
    Datum eval(const Row &row) const;

    /** Evaluate as a predicate. */
    bool evalBool(const Row &row) const;

    Kind kind() const { return kind_; }
    std::size_t attrIndex() const { return attr_; }

  private:
    friend ExprPtr attr(std::size_t idx);
    friend ExprPtr lit(Datum v);
    friend ExprPtr cmp(CmpOp op, ExprPtr l, ExprPtr r);
    friend ExprPtr logic(LogicOp op, ExprPtr l, ExprPtr r);
    friend ExprPtr arith(ArithOp op, ExprPtr l, ExprPtr r);

    Expr() = default;

    Kind kind_ = Kind::Const;
    std::size_t attr_ = 0;
    Datum value_;
    CmpOp cmp_ = CmpOp::Eq;
    LogicOp logic_ = LogicOp::And;
    ArithOp arith_ = ArithOp::Add;
    ExprPtr lhs_;
    ExprPtr rhs_;
};

/** Attribute reference by position. */
ExprPtr attr(std::size_t idx);

/** Attribute reference by name (resolved against @p schema now). */
ExprPtr col(const Schema &schema, const std::string &name);

/** Literal. */
ExprPtr lit(Datum v);
ExprPtr litInt(std::int64_t v);
ExprPtr litReal(double v);
ExprPtr litStr(std::string v);

ExprPtr cmp(CmpOp op, ExprPtr l, ExprPtr r);
ExprPtr logic(LogicOp op, ExprPtr l, ExprPtr r);
ExprPtr arith(ArithOp op, ExprPtr l, ExprPtr r);

/** a && b (convenience). */
ExprPtr andAll(std::vector<ExprPtr> terms);

/** lo <= e && e < hi (half-open range, the common date filter). */
ExprPtr rangeHalfOpen(ExprPtr e, Datum lo, Datum hi);

} // namespace db
} // namespace dss

#endif // DSS_DB_EXPR_HH
