/**
 * @file
 * Lock Management Module, after Postgres95 (paper Figure 4): a lock hash
 * table keyed by lockable object, a transaction (xid) hash recording which
 * transaction holds what, and the LockMgrLock spinlock (the paper's
 * "LockSLock") serializing every lock-manager operation.
 *
 * Postgres95 implements multi-type (read/write) locks but, of the
 * relation/page/tuple levels, only the relation level is complete; the
 * paper's read-only queries therefore take relation-level read locks that
 * never conflict — data-lock *wait* time is negligible, but the metalock
 * and the two hash tables are touched continuously, which is what shows up
 * as LockSLock/LockHash/XidHash coherence misses in Figure 7.
 */

#ifndef DSS_DB_LOCKMGR_HH
#define DSS_DB_LOCKMGR_HH

#include <cstdint>

#include "db/common.hh"
#include "db/mem.hh"

namespace dss {
namespace obs {
class RegionMap;
} // namespace obs

namespace db {

/** Lock modes (multi-type). Read-only queries use Read. */
enum class LockMode : std::int32_t { Read = 0, Write = 1 };

class LockManager
{
  public:
    /**
     * Allocate the shared lock tables in @p setup's shared arena.
     * @param max_locks Capacity of the lock hash (distinct lockables).
     * @param max_xid_entries Capacity of the xid hash.
     */
    LockManager(TracedMemory &setup, unsigned max_locks,
                unsigned max_xid_entries);

    /**
     * Acquire a relation-level lock for transaction @p xid: take
     * LockMgrLock, find/insert the relation in the lock hash, bump the
     * holder count, record the grant in the xid hash, release.
     *
     * @return true (read locks never conflict; a Write/Write or
     *         Read/Write conflict throws QueryAbort, which the harness
     *         retry layer catches and re-runs with backoff — see
     *         harness::retryOnAbort).
     */
    bool lockRelation(TracedMemory &mem, Xid xid, RelId rel, LockMode mode);

    /** Release a relation-level lock previously granted to @p xid. */
    void unlockRelation(TracedMemory &mem, Xid xid, RelId rel,
                        LockMode mode = LockMode::Read);

    /** Release everything @p xid still holds (end of query). */
    void releaseAll(TracedMemory &mem, Xid xid);

    /**
     * Free the xid-hash entries of @p xid whose grant count has dropped
     * to zero. unlockRelation leaves the (xid, rel) entry in place with
     * count 0 — Postgres95 frees the proclock at transaction end, which
     * the single-shot traces never reach — so back-to-back queries see
     * probe chains that grow with history and the hash eventually fills.
     * The stream scheduler calls this between instances through an
     * *untraced* memory so the cleanup never perturbs captured traces;
     * entries still holding grants are left alone.
     */
    void sweepXid(TracedMemory &mem, Xid xid);

    /** The LockMgrLock word (the paper's LockSLock). */
    sim::Addr lockAddr() const { return lock_; }

    /** Host-side holder count of @p rel's lock entry, for tests. */
    std::int32_t holdersOf(TracedMemory &mem, RelId rel);

    /**
     * Register the LockMgrLock and both hash tables with the memory
     * profiler's symbol map ("lock hash bucket N", "xid hash bucket N").
     */
    void describeRegions(obs::RegionMap &map) const;

  private:
    static constexpr std::size_t kLockEntryBytes = 16;
    static constexpr std::size_t kXidEntryBytes = 16;

    std::uint32_t probeLockHash(TracedMemory &mem, RelId rel);
    std::uint32_t probeXidHash(TracedMemory &mem, Xid xid, RelId rel);

    sim::Addr lockEntry(std::uint32_t s) const
    {
        return lockHash_ + s * kLockEntryBytes;
    }

    sim::Addr xidEntry(std::uint32_t s) const
    {
        return xidHash_ + s * kXidEntryBytes;
    }

    std::uint32_t lockHashSize_;
    std::uint32_t xidHashSize_;
    sim::Addr lock_ = 0;     ///< LockMgrLock
    sim::Addr lockHash_ = 0; ///< lock hash entries
    sim::Addr xidHash_ = 0;  ///< xid hash entries
};

} // namespace db
} // namespace dss

#endif // DSS_DB_LOCKMGR_HH
