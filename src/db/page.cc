#include "db/page.hh"

namespace dss {
namespace db {

void
PageRef::init()
{
    mem_.store<std::uint16_t>(base_ + kNumSlotsOff, 0);
    mem_.store<std::uint16_t>(base_ + kDataCursorOff,
                              static_cast<std::uint16_t>(kDataAreaOff));
}

int
PageRef::addTuple(const void *data, std::size_t len)
{
    auto nslots = mem_.load<std::uint16_t>(base_ + kNumSlotsOff);
    auto cursor = mem_.load<std::uint16_t>(base_ + kDataCursorOff);

    // Keep tuple bodies 8-byte aligned.
    std::size_t aligned = (len + 7) & ~std::size_t{7};
    if (nslots >= kMaxSlots || cursor + aligned > kPageBytes)
        return -1;

    mem_.storeBytes(base_ + cursor, data, len);
    mem_.store<std::uint16_t>(base_ + kSlotArrayOff + 2 * nslots, cursor);

    mem_.store<std::uint16_t>(base_ + kNumSlotsOff,
                              static_cast<std::uint16_t>(nslots + 1));
    mem_.store<std::uint16_t>(base_ + kDataCursorOff,
                              static_cast<std::uint16_t>(cursor + aligned));
    return nslots;
}

std::uint16_t
PageRef::numSlots()
{
    return mem_.load<std::uint16_t>(base_ + kNumSlotsOff);
}

sim::Addr
PageRef::tupleAddr(std::uint16_t slot)
{
    auto off = mem_.load<std::uint16_t>(base_ + kSlotArrayOff + 2 * slot);
    if (off == kDeadSlot)
        return 0;
    return base_ + off;
}

void
PageRef::killSlot(std::uint16_t slot)
{
    mem_.store<std::uint16_t>(base_ + kSlotArrayOff + 2 * slot, kDeadSlot);
}

bool
PageRef::slotLive(std::uint16_t slot)
{
    auto off = mem_.load<std::uint16_t>(base_ + kSlotArrayOff + 2 * slot);
    return off != kDeadSlot;
}

std::size_t
PageRef::freeSpace()
{
    auto nslots = mem_.load<std::uint16_t>(base_ + kNumSlotsOff);
    auto cursor = mem_.load<std::uint16_t>(base_ + kDataCursorOff);
    if (nslots >= kMaxSlots)
        return 0;
    return kPageBytes - cursor;
}

} // namespace db
} // namespace dss
