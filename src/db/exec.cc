#include "db/exec.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "db/page.hh"

namespace dss {
namespace db {

namespace {

/** Work-area sizes: large enough to overflow a 4 KB L1, small enough to
 * live in a 128 KB L2 — the private-data profile of the paper. */
constexpr std::size_t kScanWorkBytes = 12 * 1024;
constexpr std::size_t kJoinWorkBytes = 8 * 1024;
constexpr std::size_t kSortWorkBytes = 8 * 1024;

/** Per-tuple work-area touches (executor bookkeeping stand-in). */
constexpr unsigned kScanTouches = 20;
constexpr unsigned kJoinTouches = 10;
constexpr unsigned kAggTouches = 8;

/**
 * Busy-cycle cost model. A mid-90s DBMS executes on the order of a
 * thousand instructions of untraced executor machinery per tuple
 * (tuple-slot management, expression setup, function dispatch); these
 * constants, together with the one-issue-cycle-per-reference charge in the
 * Machine, calibrate the Busy fraction to the paper's 50-70%.
 */
constexpr std::uint32_t kScanTupleBusy = 800;   ///< per tuple visited
constexpr std::uint32_t kIndexFetchBusy = 2200; ///< per indexed heap fetch
constexpr std::uint32_t kJoinRowBusy = 250;    ///< per joined row
constexpr std::uint32_t kSortCompareBusy = 20; ///< per comparison
constexpr std::uint32_t kAggRowBusy = 120;     ///< per accumulated row
constexpr std::uint32_t kOutputRowBusy = 200;  ///< per row to front-end

Schema
projectedSchema(const Schema &left, const Schema &right,
                const std::vector<ProjItem> &proj)
{
    Schema out;
    for (const ProjItem &p : proj) {
        const Attribute &a =
            p.fromRight ? right.attr(p.idx) : left.attr(p.idx);
        out.add(a.name, a.type, a.len);
    }
    return out;
}

} // namespace

std::string_view
logicalOpName(LogicalOp op)
{
    switch (op) {
      case LogicalOp::SeqScanSelect: return "SS";
      case LogicalOp::IndexScanSelect: return "IS";
      case LogicalOp::NestedLoopJoin: return "NL";
      case LogicalOp::MergeJoin: return "M";
      case LogicalOp::HashJoin: return "H";
      case LogicalOp::Sort: return "Sort";
      case LogicalOp::Group: return "Group";
      case LogicalOp::Aggregate: return "Aggr";
    }
    return "?";
}

void
ExecNode::rescan(ExecContext &)
{
    throw std::logic_error(name() + ": rescan not supported");
}

void
ExecNode::bindKey(std::int64_t)
{
    throw std::logic_error(name() + ": not a parameterized scan");
}

// ---------------------------------------------------------------------
// WorkArea

void
WorkArea::init(ExecContext &ctx, std::size_t bytes, std::uint32_t seed)
{
    base_ = ctx.priv.alloc(bytes, 64);
    words_ = bytes / 8;
    state_ = seed | 1;
    // Seed the hot set: the small collection of allocations the executor
    // keeps revisiting (slots, expression state, scan descriptors).
    for (std::uint32_t &h : hot_) {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        h = state_ % static_cast<std::uint32_t>(words_);
    }
}

void
WorkArea::touch(ExecContext &ctx, unsigned k)
{
    for (unsigned i = 0; i < k; ++i) {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        std::uint32_t r = state_;
        // Mostly revisit hot allocations (temporal reuse that bigger or
        // finer-lined primary caches capture); occasionally churn one
        // (palloc turnover — the scattered accesses with poor locality the
        // paper describes).
        if ((r & 7u) < 3)
            hot_[(r >> 3) % hot_.size()] =
                (r >> 8) % static_cast<std::uint32_t>(words_);
        sim::Addr a = base_ + hot_[(r >> 2) % hot_.size()] * 8;
        auto v = ctx.mem.load<std::uint64_t>(a);
        ctx.mem.store<std::uint64_t>(a, v + 1);
    }
    ctx.mem.busy(k);
}

// ---------------------------------------------------------------------
// SeqScanNode

SeqScanNode::SeqScanNode(const Relation &rel, ExprPtr pred,
                         std::size_t block_lo, std::size_t block_hi)
    : rel_(&rel), pred_(std::move(pred)), blockLo_(block_lo),
      blockHi_(std::min(block_hi, rel.blocks.size()))
{}

void
SeqScanNode::open(ExecContext &ctx)
{
    ctx.catalog.lockmgr().lockRelation(ctx.mem, ctx.xid, rel_->id,
                                       LockMode::Read);
    locked_ = true;
    outSlot_ = ctx.priv.alloc(rel_->schema.tupleLen());
    work_.init(ctx, kScanWorkBytes, static_cast<std::uint32_t>(rel_->id));
    blockIdx_ = blockLo_;
    slot_ = 0;
    pinned_ = false;
}

bool
SeqScanNode::pinCurrent(ExecContext &ctx)
{
    if (blockIdx_ >= blockHi_)
        return false;
    pageAddr_ = ctx.catalog.bufmgr().pinPage(ctx.mem, rel_->id,
                                             rel_->blocks[blockIdx_]);
    pinned_ = true;
    numSlots_ = PageRef(ctx.mem, pageAddr_).numSlots();
    slot_ = 0;
    return true;
}

bool
SeqScanNode::next(ExecContext &ctx, sim::Addr &out)
{
    for (;;) {
        if (!pinned_ && !pinCurrent(ctx))
            return false;
        while (slot_ < numSlots_) {
            PageRef page(ctx.mem, pageAddr_);
            sim::Addr t = page.tupleAddr(slot_);
            ++slot_;
            if (!t)
                continue; // deleted tuple
            work_.touch(ctx, kScanTouches);
            Row row{&ctx.mem, t, &rel_->schema};
            ctx.mem.busy(kScanTupleBusy);
            if (!pred_ || pred_->evalBool(row)) {
                // Selected: re-read and copy into the private slot.
                ctx.mem.copy(outSlot_, t, rel_->schema.tupleLen());
                out = outSlot_;
                return true;
            }
        }
        ctx.catalog.bufmgr().unpinPage(ctx.mem, rel_->id,
                                       rel_->blocks[blockIdx_]);
        pinned_ = false;
        ++blockIdx_;
    }
}

void
SeqScanNode::close(ExecContext &ctx)
{
    if (pinned_) {
        ctx.catalog.bufmgr().unpinPage(ctx.mem, rel_->id,
                                       rel_->blocks[blockIdx_]);
        pinned_ = false;
    }
    if (locked_) {
        ctx.catalog.lockmgr().unlockRelation(ctx.mem, ctx.xid, rel_->id);
        locked_ = false;
    }
}

void
SeqScanNode::rescan(ExecContext &ctx)
{
    if (pinned_) {
        ctx.catalog.bufmgr().unpinPage(ctx.mem, rel_->id,
                                       rel_->blocks[blockIdx_]);
        pinned_ = false;
    }
    blockIdx_ = blockLo_;
    slot_ = 0;
}

// ---------------------------------------------------------------------
// IndexScanNode

IndexScanNode::IndexScanNode(const Relation &rel, const BTree &index,
                             std::int64_t lo_key, std::int64_t hi_key,
                             ExprPtr residual)
    : rel_(&rel), index_(&index), lo_(lo_key), hi_(hi_key),
      residual_(std::move(residual))
{}

void
IndexScanNode::acquireLocks(ExecContext &ctx)
{
    ctx.catalog.lockmgr().lockRelation(ctx.mem, ctx.xid, rel_->id,
                                       LockMode::Read);
    ctx.catalog.lockmgr().lockRelation(ctx.mem, ctx.xid, index_->relId(),
                                       LockMode::Read);
    locked_ = true;
}

void
IndexScanNode::releaseLocks(ExecContext &ctx)
{
    if (!locked_)
        return;
    ctx.catalog.lockmgr().unlockRelation(ctx.mem, ctx.xid, index_->relId());
    ctx.catalog.lockmgr().unlockRelation(ctx.mem, ctx.xid, rel_->id);
    locked_ = false;
}

void
IndexScanNode::open(ExecContext &ctx)
{
    acquireLocks(ctx);
    outSlot_ = ctx.priv.alloc(rel_->schema.tupleLen());
    work_.init(ctx, kScanWorkBytes,
               static_cast<std::uint32_t>(rel_->id * 7 + 3));
    exhausted_ = false;
}

bool
IndexScanNode::next(ExecContext &ctx, sim::Addr &out)
{
    if (exhausted_)
        return false;
    if (!cursor_.open()) {
        cursor_ = index_->seek(ctx.mem, lo_);
        if (!cursor_.open()) {
            exhausted_ = true;
            return false;
        }
    }
    std::int64_t key;
    Tid tid;
    while (cursor_.next(ctx.mem, key, tid)) {
        if (key > hi_) {
            cursor_.close(ctx.mem);
            exhausted_ = true;
            return false;
        }
        // Fetch the heap tuple the index entry points at.
        sim::Addr page_addr =
            ctx.catalog.bufmgr().pinPage(ctx.mem, rel_->id, tid.block);
        PageRef page(ctx.mem, page_addr);
        sim::Addr t = page.tupleAddr(tid.slot);
        if (!t) {
            // The index still points at a deleted tuple: skip it.
            ctx.catalog.bufmgr().unpinPage(ctx.mem, rel_->id, tid.block);
            continue;
        }
        work_.touch(ctx, kScanTouches);
        Row row{&ctx.mem, t, &rel_->schema};
        ctx.mem.busy(kIndexFetchBusy);
        bool pass = !residual_ || residual_->evalBool(row);
        if (pass)
            ctx.mem.copy(outSlot_, t, rel_->schema.tupleLen());
        ctx.catalog.bufmgr().unpinPage(ctx.mem, rel_->id, tid.block);
        if (pass) {
            out = outSlot_;
            return true;
        }
    }
    exhausted_ = true;
    return false;
}

void
IndexScanNode::close(ExecContext &ctx)
{
    cursor_.close(ctx.mem);
    releaseLocks(ctx);
}

void
IndexScanNode::rescan(ExecContext &ctx)
{
    cursor_.close(ctx.mem);
    exhausted_ = false;
    // Postgres95 re-initializes the scan descriptor through the lock
    // manager on every rescan; this is the steady LockMgrLock traffic the
    // paper measures on Index queries (ablatable via
    // ExecContext::relockOnRescan).
    if (ctx.relockOnRescan) {
        releaseLocks(ctx);
        acquireLocks(ctx);
    }
}

void
IndexScanNode::bindKey(std::int64_t key)
{
    lo_ = key;
    hi_ = key;
}

// ---------------------------------------------------------------------
// NestedLoopJoinNode

NestedLoopJoinNode::NestedLoopJoinNode(NodePtr outer, NodePtr inner,
                                       std::size_t outer_key_attr,
                                       ExprPtr extra_pred,
                                       std::vector<ProjItem> proj)
    : outer_(std::move(outer)), inner_(std::move(inner)),
      keyAttr_(outer_key_attr), extraPred_(std::move(extra_pred)),
      proj_(std::move(proj)),
      outSchema_(projectedSchema(outer_->schema(), inner_->schema(), proj_))
{}

void
NestedLoopJoinNode::open(ExecContext &ctx)
{
    outer_->open(ctx);
    inner_->open(ctx);
    outSlot_ = ctx.priv.alloc(outSchema_.tupleLen());
    work_.init(ctx, kJoinWorkBytes, 0x9e3779b9u);
    haveOuter_ = false;
}

void
NestedLoopJoinNode::project(ExecContext &ctx, sim::Addr outer_t,
                            sim::Addr inner_t)
{
    for (std::size_t i = 0; i < proj_.size(); ++i) {
        const ProjItem &p = proj_[i];
        const Schema &src_s =
            p.fromRight ? inner_->schema() : outer_->schema();
        sim::Addr src_t = p.fromRight ? inner_t : outer_t;
        Datum v = readAttr(ctx.mem, src_t, src_s, p.idx);
        writeAttr(ctx.mem, outSlot_, outSchema_, i, v);
    }
}

bool
NestedLoopJoinNode::next(ExecContext &ctx, sim::Addr &out)
{
    for (;;) {
        if (!haveOuter_) {
            if (!outer_->next(ctx, outerTuple_))
                return false;
            haveOuter_ = true;
            if (keyAttr_ != kNoKey) {
                Datum k = readAttr(ctx.mem, outerTuple_, outer_->schema(),
                                   keyAttr_);
                inner_->bindKey(datumToKey(k));
            }
            inner_->rescan(ctx);
        }
        sim::Addr inner_t;
        if (!inner_->next(ctx, inner_t)) {
            haveOuter_ = false;
            continue;
        }
        work_.touch(ctx, kJoinTouches);
        ctx.mem.busy(kJoinRowBusy);
        project(ctx, outerTuple_, inner_t);
        if (extraPred_) {
            Row row{&ctx.mem, outSlot_, &outSchema_};
            if (!extraPred_->evalBool(row))
                continue;
        }
        out = outSlot_;
        return true;
    }
}

void
NestedLoopJoinNode::close(ExecContext &ctx)
{
    inner_->close(ctx);
    outer_->close(ctx);
}

void
NestedLoopJoinNode::rescan(ExecContext &ctx)
{
    outer_->rescan(ctx);
    haveOuter_ = false;
}

// ---------------------------------------------------------------------
// SemiJoinNode

SemiJoinNode::SemiJoinNode(NodePtr outer, NodePtr inner,
                           std::size_t outer_key_attr, bool negated)
    : outer_(std::move(outer)), inner_(std::move(inner)),
      keyAttr_(outer_key_attr), negated_(negated)
{}

void
SemiJoinNode::open(ExecContext &ctx)
{
    outer_->open(ctx);
    inner_->open(ctx);
    work_.init(ctx, kJoinWorkBytes, 0x2545f491u);
}

bool
SemiJoinNode::next(ExecContext &ctx, sim::Addr &out)
{
    sim::Addr outer_t;
    while (outer_->next(ctx, outer_t)) {
        Datum k = readAttr(ctx.mem, outer_t, outer_->schema(), keyAttr_);
        inner_->bindKey(datumToKey(k));
        inner_->rescan(ctx);
        work_.touch(ctx, kJoinTouches);
        ctx.mem.busy(kJoinRowBusy);
        sim::Addr inner_t;
        const bool exists = inner_->next(ctx, inner_t);
        if (exists != negated_) {
            out = outer_t;
            return true;
        }
    }
    return false;
}

void
SemiJoinNode::close(ExecContext &ctx)
{
    inner_->close(ctx);
    outer_->close(ctx);
}

void
SemiJoinNode::rescan(ExecContext &ctx)
{
    outer_->rescan(ctx);
}

// ---------------------------------------------------------------------
// MergeJoinNode

MergeJoinNode::MergeJoinNode(NodePtr left, NodePtr right,
                             std::size_t left_key, std::size_t right_key,
                             std::vector<ProjItem> proj)
    : left_(std::move(left)), right_(std::move(right)), leftKey_(left_key),
      rightKey_(right_key), proj_(std::move(proj)),
      outSchema_(projectedSchema(left_->schema(), right_->schema(), proj_))
{}

void
MergeJoinNode::open(ExecContext &ctx)
{
    left_->open(ctx);
    right_->open(ctx);
    outSlot_ = ctx.priv.alloc(outSchema_.tupleLen());
    work_.init(ctx, kJoinWorkBytes, 0x85ebca6bu);
    leftValid_ = rightValid_ = false;
    inGroup_ = false;
    group_.clear();
    groupPos_ = 0;
}

std::int64_t
MergeJoinNode::keyOf(ExecContext &ctx, sim::Addr t, const Schema &s,
                     std::size_t a)
{
    return datumToKey(readAttr(ctx.mem, t, s, a));
}

bool
MergeJoinNode::advanceLeft(ExecContext &ctx)
{
    leftValid_ = left_->next(ctx, leftTuple_);
    if (leftValid_)
        leftKeyVal_ = keyOf(ctx, leftTuple_, left_->schema(), leftKey_);
    return leftValid_;
}

bool
MergeJoinNode::advanceRight(ExecContext &ctx)
{
    rightValid_ = right_->next(ctx, rightTuple_);
    if (rightValid_)
        rightKeyVal_ = keyOf(ctx, rightTuple_, right_->schema(), rightKey_);
    return rightValid_;
}

void
MergeJoinNode::project(ExecContext &ctx, sim::Addr left_t,
                       sim::Addr right_t)
{
    for (std::size_t i = 0; i < proj_.size(); ++i) {
        const ProjItem &p = proj_[i];
        const Schema &src_s =
            p.fromRight ? right_->schema() : left_->schema();
        sim::Addr src_t = p.fromRight ? right_t : left_t;
        Datum v = readAttr(ctx.mem, src_t, src_s, p.idx);
        writeAttr(ctx.mem, outSlot_, outSchema_, i, v);
    }
}

bool
MergeJoinNode::next(ExecContext &ctx, sim::Addr &out)
{
    for (;;) {
        if (inGroup_) {
            if (groupPos_ < group_.size()) {
                work_.touch(ctx, kJoinTouches);
                ctx.mem.busy(kJoinRowBusy);
                project(ctx, leftTuple_, group_[groupPos_++]);
                out = outSlot_;
                return true;
            }
            // Exhausted the buffered right group for this left tuple.
            if (!advanceLeft(ctx))
                return false;
            if (leftKeyVal_ == groupKey_) {
                groupPos_ = 0; // same key: replay the group
                continue;
            }
            inGroup_ = false;
        }

        // Align the two streams on the next common key.
        if (!leftValid_ && !advanceLeft(ctx))
            return false;
        if (!rightValid_ && !advanceRight(ctx))
            return false;
        while (leftKeyVal_ != rightKeyVal_) {
            if (leftKeyVal_ < rightKeyVal_) {
                if (!advanceLeft(ctx))
                    return false;
            } else {
                if (!advanceRight(ctx))
                    return false;
            }
            ctx.mem.busy(1);
        }

        // Buffer the right-side duplicates of this key into private slots.
        groupKey_ = rightKeyVal_;
        const std::size_t len = right_->schema().tupleLen();
        std::size_t n = 0;
        while (rightValid_ && rightKeyVal_ == groupKey_) {
            if (n >= group_.size())
                group_.push_back(ctx.priv.alloc(len));
            ctx.mem.copy(group_[n], rightTuple_, len);
            ++n;
            advanceRight(ctx);
        }
        group_.resize(n);
        groupPos_ = 0;
        inGroup_ = true;
    }
}

void
MergeJoinNode::close(ExecContext &ctx)
{
    right_->close(ctx);
    left_->close(ctx);
}

// ---------------------------------------------------------------------
// HashJoinNode

HashJoinNode::HashJoinNode(NodePtr probe, NodePtr build,
                           std::size_t probe_key, std::size_t build_key,
                           std::vector<ProjItem> proj)
    : probe_(std::move(probe)), build_(std::move(build)),
      probeKey_(probe_key), buildKey_(build_key), proj_(std::move(proj)),
      outSchema_(projectedSchema(probe_->schema(), build_->schema(), proj_))
{}

void
HashJoinNode::open(ExecContext &ctx)
{
    outSlot_ = ctx.priv.alloc(outSchema_.tupleLen());
    work_.init(ctx, kJoinWorkBytes, 0xc2b2ae35u);

    // Build phase: materialize the right input into a private hash table.
    build_->open(ctx);
    const std::size_t len = build_->schema().tupleLen();
    sim::Addr t;
    while (build_->next(ctx, t)) {
        std::int64_t k =
            datumToKey(readAttr(ctx.mem, t, build_->schema(), buildKey_));
        sim::Addr slot = ctx.priv.alloc(len);
        ctx.mem.copy(slot, t, len);
        ctx.mem.busy(3); // hash + bucket insert
        table_.emplace(k, slot);
    }

    probe_->open(ctx);
    haveProbe_ = false;
}

void
HashJoinNode::project(ExecContext &ctx, sim::Addr probe_t,
                      sim::Addr build_t)
{
    for (std::size_t i = 0; i < proj_.size(); ++i) {
        const ProjItem &p = proj_[i];
        const Schema &src_s =
            p.fromRight ? build_->schema() : probe_->schema();
        sim::Addr src_t = p.fromRight ? build_t : probe_t;
        Datum v = readAttr(ctx.mem, src_t, src_s, p.idx);
        writeAttr(ctx.mem, outSlot_, outSchema_, i, v);
    }
}

bool
HashJoinNode::next(ExecContext &ctx, sim::Addr &out)
{
    for (;;) {
        if (!haveProbe_) {
            if (!probe_->next(ctx, probeTuple_))
                return false;
            std::int64_t k = datumToKey(
                readAttr(ctx.mem, probeTuple_, probe_->schema(), probeKey_));
            ctx.mem.busy(2); // hash + bucket lookup
            range_ = table_.equal_range(k);
            haveProbe_ = true;
        }
        if (range_.first == range_.second) {
            haveProbe_ = false;
            continue;
        }
        sim::Addr build_t = range_.first->second;
        ++range_.first;
        // Touch the candidate's key (the probe re-checks it in memory).
        (void)readAttr(ctx.mem, build_t, build_->schema(), buildKey_);
        work_.touch(ctx, kJoinTouches);
        ctx.mem.busy(kJoinRowBusy);
        project(ctx, probeTuple_, build_t);
        out = outSlot_;
        return true;
    }
}

void
HashJoinNode::close(ExecContext &ctx)
{
    probe_->close(ctx);
    build_->close(ctx);
    table_.clear();
}

// ---------------------------------------------------------------------
// SortNode

SortNode::SortNode(NodePtr child, std::vector<std::size_t> key_attrs,
                   std::vector<bool> descending)
    : child_(std::move(child)), keys_(std::move(key_attrs)),
      desc_(std::move(descending))
{
    if (desc_.empty())
        desc_.assign(keys_.size(), false);
    if (desc_.size() != keys_.size())
        throw std::invalid_argument("SortNode: desc/keys size mismatch");
}

void
SortNode::open(ExecContext &ctx)
{
    child_->open(ctx);
    work_.init(ctx, kSortWorkBytes, 0x27d4eb2fu);
    rows_.clear();
    order_.clear();
    pos_ = 0;

    // Materialize the input into a private temp table (paper Section 2.1.2:
    // sort nodes need temporary tables for their whole input).
    const Schema &s = child_->schema();
    const std::size_t len = s.tupleLen();
    sim::Addr t;
    while (child_->next(ctx, t)) {
        sim::Addr slot = ctx.priv.alloc(len);
        ctx.mem.copy(slot, t, len);
        rows_.push_back(slot);
    }

    order_.resize(rows_.size());
    for (std::uint32_t i = 0; i < order_.size(); ++i)
        order_[i] = i;

    // Quicksort; every comparison reads the key attributes of both rows
    // from the private temp table (traced).
    auto cmp_rows = [&](std::uint32_t a, std::uint32_t b) {
        ctx.mem.busy(kSortCompareBusy);
        for (std::size_t k = 0; k < keys_.size(); ++k) {
            Datum da = readAttr(ctx.mem, rows_[a], s, keys_[k]);
            Datum db = readAttr(ctx.mem, rows_[b], s, keys_[k]);
            int c = compareDatum(da, db);
            if (c != 0)
                return desc_[k] ? c > 0 : c < 0;
        }
        return false;
    };
    std::stable_sort(order_.begin(), order_.end(), cmp_rows);
}

bool
SortNode::next(ExecContext &ctx, sim::Addr &out)
{
    if (pos_ >= order_.size())
        return false;
    work_.touch(ctx, 1);
    out = rows_[order_[pos_++]];
    return true;
}

void
SortNode::close(ExecContext &ctx)
{
    child_->close(ctx);
}

void
SortNode::rescan(ExecContext &)
{
    pos_ = 0;
}

// ---------------------------------------------------------------------
// AggregateNode

AggregateNode::AggregateNode(NodePtr child,
                             std::vector<std::size_t> group_attrs,
                             std::vector<AggSpec> aggs)
    : child_(std::move(child)), groupAttrs_(std::move(group_attrs)),
      aggs_(std::move(aggs))
{
    if (groupAttrs_.empty() && aggs_.empty())
        throw std::invalid_argument("AggregateNode: nothing to compute");
    const Schema &s = child_->schema();
    for (std::size_t g : groupAttrs_) {
        const Attribute &a = s.attr(g);
        outSchema_.add(a.name, a.type, a.len);
    }
    for (const AggSpec &a : aggs_) {
        outSchema_.add(a.name,
                       a.op == AggSpec::Op::Count ? AttrType::Int64
                                                  : AttrType::Double);
    }
}

std::vector<LogicalOp>
AggregateNode::logicalOps() const
{
    std::vector<LogicalOp> ops;
    if (!groupAttrs_.empty())
        ops.push_back(LogicalOp::Group);
    if (!aggs_.empty())
        ops.push_back(LogicalOp::Aggregate);
    return ops;
}

void
AggregateNode::open(ExecContext &ctx)
{
    child_->open(ctx);
    outSlot_ = ctx.priv.alloc(outSchema_.tupleLen());
    state_ = ctx.priv.alloc(aggs_.size() * 16 + 16);
    pending_ = ctx.priv.alloc(child_->schema().tupleLen());
    work_.init(ctx, kJoinWorkBytes, 0x165667b1u);
    done_ = false;
    havePending_ = false;
    rowsInGroup_ = 0;
}

void
AggregateNode::initState(ExecContext &ctx)
{
    for (std::size_t i = 0; i < aggs_.size(); ++i) {
        double init = 0.0;
        if (aggs_[i].op == AggSpec::Op::Min)
            init = std::numeric_limits<double>::infinity();
        else if (aggs_[i].op == AggSpec::Op::Max)
            init = -std::numeric_limits<double>::infinity();
        ctx.mem.store<double>(state_ + i * 16, init);
        ctx.mem.store<std::uint64_t>(state_ + i * 16 + 8, 0);
    }
    rowsInGroup_ = 0;
}

void
AggregateNode::accumulate(ExecContext &ctx, sim::Addr t)
{
    Row row{&ctx.mem, t, &child_->schema()};
    work_.touch(ctx, kAggTouches);
    ctx.mem.busy(kAggRowBusy);
    for (std::size_t i = 0; i < aggs_.size(); ++i) {
        const AggSpec &a = aggs_[i];
        auto cnt = ctx.mem.load<std::uint64_t>(state_ + i * 16 + 8);
        ctx.mem.store<std::uint64_t>(state_ + i * 16 + 8, cnt + 1);
        if (a.op == AggSpec::Op::Count && !a.arg)
            continue;
        double v = datumReal(a.arg->eval(row));
        auto acc = ctx.mem.load<double>(state_ + i * 16);
        ctx.mem.busy(1);
        switch (a.op) {
          case AggSpec::Op::Sum:
          case AggSpec::Op::Avg:
            acc += v;
            break;
          case AggSpec::Op::Min:
            acc = std::min(acc, v);
            break;
          case AggSpec::Op::Max:
            acc = std::max(acc, v);
            break;
          case AggSpec::Op::Count:
            break;
        }
        ctx.mem.store<double>(state_ + i * 16, acc);
    }
    ++rowsInGroup_;
}

void
AggregateNode::emit(ExecContext &ctx, const std::vector<Datum> &keys)
{
    for (std::size_t g = 0; g < groupAttrs_.size(); ++g)
        writeAttr(ctx.mem, outSlot_, outSchema_, g, keys[g]);
    for (std::size_t i = 0; i < aggs_.size(); ++i) {
        const AggSpec &a = aggs_[i];
        auto acc = ctx.mem.load<double>(state_ + i * 16);
        auto cnt = ctx.mem.load<std::uint64_t>(state_ + i * 16 + 8);
        Datum v;
        switch (a.op) {
          case AggSpec::Op::Count:
            v = Datum{static_cast<std::int64_t>(cnt)};
            break;
          case AggSpec::Op::Avg:
            v = Datum{cnt ? acc / static_cast<double>(cnt) : 0.0};
            break;
          default:
            v = Datum{acc};
            break;
        }
        writeAttr(ctx.mem, outSlot_, outSchema_, groupAttrs_.size() + i, v);
    }
}

std::vector<Datum>
AggregateNode::groupKeysOf(ExecContext &ctx, sim::Addr t)
{
    std::vector<Datum> out;
    out.reserve(groupAttrs_.size());
    for (std::size_t g : groupAttrs_)
        out.push_back(readAttr(ctx.mem, t, child_->schema(), g));
    return out;
}

bool
AggregateNode::next(ExecContext &ctx, sim::Addr &out)
{
    if (done_)
        return false;
    const std::size_t child_len = child_->schema().tupleLen();

    if (!havePending_) {
        sim::Addr t;
        if (!child_->next(ctx, t)) {
            done_ = true;
            if (groupAttrs_.empty()) {
                // SQL semantics: a global aggregate over an empty input
                // still yields one row.
                initState(ctx);
                emit(ctx, {});
                out = outSlot_;
                return true;
            }
            return false;
        }
        ctx.mem.copy(pending_, t, child_len);
        havePending_ = true;
    }

    std::vector<Datum> keys = groupKeysOf(ctx, pending_);
    initState(ctx);
    accumulate(ctx, pending_);
    havePending_ = false;

    for (;;) {
        sim::Addr t;
        if (!child_->next(ctx, t)) {
            done_ = true;
            emit(ctx, keys);
            out = outSlot_;
            return true;
        }
        if (groupAttrs_.empty()) {
            accumulate(ctx, t);
            continue;
        }
        std::vector<Datum> tkeys = groupKeysOf(ctx, t);
        bool same = true;
        for (std::size_t g = 0; g < keys.size(); ++g) {
            if (compareDatum(keys[g], tkeys[g]) != 0) {
                same = false;
                break;
            }
        }
        ctx.mem.busy(1);
        if (same) {
            accumulate(ctx, t);
        } else {
            ctx.mem.copy(pending_, t, child_len);
            havePending_ = true;
            emit(ctx, keys);
            out = outSlot_;
            return true;
        }
    }
}

void
AggregateNode::close(ExecContext &ctx)
{
    child_->close(ctx);
}

// ---------------------------------------------------------------------
// Plan utilities

namespace {

void
collectOps(const ExecNode &n, std::vector<LogicalOp> &out)
{
    for (LogicalOp op : n.logicalOps()) {
        if (std::find(out.begin(), out.end(), op) == out.end())
            out.push_back(op);
    }
    for (const ExecNode *c : n.children())
        collectOps(*c, out);
}

} // namespace

std::vector<LogicalOp>
collectLogicalOps(const ExecNode &root)
{
    std::vector<LogicalOp> out;
    collectOps(root, out);
    return out;
}

std::vector<std::vector<Datum>>
runQuery(ExecContext &ctx, ExecNode &root)
{
    std::vector<std::vector<Datum>> rows;
    root.open(ctx);
    sim::Addr t;
    while (root.next(ctx, t)) {
        const Schema &s = root.schema();
        std::vector<Datum> row;
        row.reserve(s.numAttrs());
        for (std::size_t i = 0; i < s.numAttrs(); ++i)
            row.push_back(readAttr(ctx.mem, t, s, i));
        ctx.mem.busy(kOutputRowBusy); // hand the row to the front-end
        rows.push_back(std::move(row));
    }
    root.close(ctx);
    return rows;
}

} // namespace db
} // namespace dss
