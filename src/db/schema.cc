#include "db/schema.hh"

#include <cstring>
#include <stdexcept>

namespace dss {
namespace db {

namespace {

std::uint16_t
typeSize(AttrType t, std::uint16_t declared)
{
    switch (t) {
      case AttrType::Int32:
      case AttrType::Date:
        return 4;
      case AttrType::Int64:
        return 8;
      case AttrType::Double:
        return 8;
      case AttrType::Char:
        if (declared == 0)
            throw std::invalid_argument("Char attribute needs a length");
        return declared;
    }
    return 4;
}

std::uint16_t
typeAlign(AttrType t)
{
    switch (t) {
      case AttrType::Int32:
      case AttrType::Date:
        return 4;
      case AttrType::Int64:
      case AttrType::Double:
        return 8;
      case AttrType::Char:
        return 1;
    }
    return 4;
}

} // namespace

Schema &
Schema::add(std::string name, AttrType type, std::uint16_t len)
{
    Attribute a;
    a.name = std::move(name);
    a.type = type;
    a.len = typeSize(type, len);
    std::uint16_t align = typeAlign(type);
    a.offset = static_cast<std::uint16_t>(
        (rawLen_ + align - 1) & ~static_cast<std::size_t>(align - 1));
    rawLen_ = a.offset + a.len;
    attrs_.push_back(std::move(a));
    // Tuples are 8-byte aligned overall; columns pack at their natural
    // alignment only.
    tupleLen_ = (rawLen_ + 7) & ~std::size_t{7};
    return *this;
}

std::size_t
Schema::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < attrs_.size(); ++i) {
        if (attrs_[i].name == name)
            return i;
    }
    throw std::out_of_range("Schema: no attribute named " + name);
}

Schema
Schema::concat(const Schema &left, const Schema &right)
{
    Schema out;
    for (std::size_t i = 0; i < left.numAttrs(); ++i) {
        const Attribute &a = left.attr(i);
        out.add(a.name, a.type, a.len);
    }
    for (std::size_t i = 0; i < right.numAttrs(); ++i) {
        const Attribute &a = right.attr(i);
        std::string name = a.name;
        // Disambiguate duplicated column names from self-joins.
        bool dup = false;
        for (std::size_t j = 0; j < left.numAttrs(); ++j) {
            if (left.attr(j).name == name) {
                dup = true;
                break;
            }
        }
        out.add(dup ? name + "_r" : name, a.type, a.len);
    }
    return out;
}

int
compareDatum(const Datum &a, const Datum &b)
{
    if (std::holds_alternative<std::int64_t>(a)) {
        std::int64_t x = datumInt(a), y = datumInt(b);
        return x < y ? -1 : x > y ? 1 : 0;
    }
    if (std::holds_alternative<double>(a)) {
        double x = datumReal(a), y = datumReal(b);
        return x < y ? -1 : x > y ? 1 : 0;
    }
    return datumStr(a).compare(datumStr(b));
}

std::int64_t
datumInt(const Datum &d)
{
    return std::get<std::int64_t>(d);
}

double
datumReal(const Datum &d)
{
    if (std::holds_alternative<std::int64_t>(d))
        return static_cast<double>(std::get<std::int64_t>(d));
    return std::get<double>(d);
}

const std::string &
datumStr(const Datum &d)
{
    return std::get<std::string>(d);
}

std::vector<std::uint8_t>
encodeTuple(const Schema &schema, const std::vector<Datum> &values)
{
    if (values.size() != schema.numAttrs())
        throw std::invalid_argument("encodeTuple: arity mismatch");
    std::vector<std::uint8_t> out(schema.tupleLen(), 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
        const Attribute &a = schema.attr(i);
        std::uint8_t *dst = out.data() + a.offset;
        switch (a.type) {
          case AttrType::Int32:
          case AttrType::Date: {
            auto v = static_cast<std::int32_t>(datumInt(values[i]));
            std::memcpy(dst, &v, 4);
            break;
          }
          case AttrType::Int64: {
            std::int64_t v = datumInt(values[i]);
            std::memcpy(dst, &v, 8);
            break;
          }
          case AttrType::Double: {
            double v = datumReal(values[i]);
            std::memcpy(dst, &v, 8);
            break;
          }
          case AttrType::Char: {
            std::string s = datumStr(values[i]);
            s.resize(a.len, '\0');
            std::memcpy(dst, s.data(), a.len);
            break;
          }
        }
    }
    return out;
}

std::int64_t
datumToKey(const Datum &d)
{
    if (std::holds_alternative<std::int64_t>(d))
        return std::get<std::int64_t>(d);
    if (std::holds_alternative<double>(d))
        return static_cast<std::int64_t>(std::get<double>(d) * 100.0);
    const std::string &s = std::get<std::string>(d);
    std::uint64_t k = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        k <<= 8;
        if (i < s.size())
            k |= static_cast<std::uint8_t>(s[i]);
    }
    // Shift into the non-negative range while preserving order.
    return static_cast<std::int64_t>(k >> 1);
}

Datum
readAttr(TracedMemory &mem, sim::Addr base, const Schema &schema,
         std::size_t idx)
{
    const Attribute &a = schema.attr(idx);
    const sim::Addr addr = base + a.offset;
    switch (a.type) {
      case AttrType::Int32:
      case AttrType::Date:
        return Datum{static_cast<std::int64_t>(mem.load<std::int32_t>(addr))};
      case AttrType::Int64:
        return Datum{mem.load<std::int64_t>(addr)};
      case AttrType::Double:
        return Datum{mem.load<double>(addr)};
      case AttrType::Char: {
        std::string s(a.len, '\0');
        mem.loadBytes(addr, s.data(), a.len);
        s.resize(std::strlen(s.c_str()));
        return Datum{std::move(s)};
      }
    }
    return Datum{std::int64_t{0}};
}

void
writeAttr(TracedMemory &mem, sim::Addr base, const Schema &schema,
          std::size_t idx, const Datum &value)
{
    const Attribute &a = schema.attr(idx);
    const sim::Addr addr = base + a.offset;
    switch (a.type) {
      case AttrType::Int32:
      case AttrType::Date:
        mem.store<std::int32_t>(addr,
                                static_cast<std::int32_t>(datumInt(value)));
        break;
      case AttrType::Int64:
        mem.store<std::int64_t>(addr, datumInt(value));
        break;
      case AttrType::Double:
        mem.store<double>(addr, datumReal(value));
        break;
      case AttrType::Char: {
        std::string s = datumStr(value);
        s.resize(a.len, '\0');
        mem.storeBytes(addr, s.data(), a.len);
        break;
      }
    }
}

} // namespace db
} // namespace dss
