#include "db/bufmgr.hh"

#include <stdexcept>

#include "obs/lineinfo.hh"

namespace dss {
namespace db {

namespace {

// BufferDesc layout (32 bytes).
constexpr sim::Addr kDescRel = 0;
constexpr sim::Addr kDescBlk = 4;
constexpr sim::Addr kDescPin = 8;
constexpr sim::Addr kDescFlags = 12;
constexpr sim::Addr kDescPage = 16; // uint64 block address

// Lookup-hash entry layout (16 bytes).
constexpr sim::Addr kHashRel = 0;
constexpr sim::Addr kHashBlk = 4;
constexpr sim::Addr kHashDesc = 8;

std::uint32_t
nextPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

std::uint32_t
mixHash(RelId rel, BlockNo blk)
{
    auto h = static_cast<std::uint32_t>(rel) * 2654435761u;
    h ^= static_cast<std::uint32_t>(blk) * 40503u + (h >> 16);
    return h;
}

} // namespace

BufferManager::BufferManager(TracedMemory &setup, unsigned max_blocks)
    : maxBlocks_(max_blocks), hashSize_(nextPow2(max_blocks * 2))
{
    sim::MemArena &arena = setup.space().shared();
    lock_ = arena.alloc(64, sim::DataClass::LockSLock, 64);
    descs_ = arena.alloc(maxBlocks_ * kDescBytes, sim::DataClass::BufDesc, 64);
    hash_ = arena.alloc(hashSize_ * kHashEntryBytes, sim::DataClass::BufLook,
                        64);
    // Empty hash slots are marked rel = -1 (host init; no trace needed at
    // setup, but going through the sink is harmless since setup uses a
    // NullSink).
    for (std::uint32_t s = 0; s < hashSize_; ++s)
        setup.store<std::int32_t>(hashAddr(s) + kHashRel, -1);
}

std::uint32_t
BufferManager::probeHash(TracedMemory &mem, RelId rel, BlockNo blk,
                         bool for_insert)
{
    std::uint32_t slot = mixHash(rel, blk) & (hashSize_ - 1);
    mem.busy(2); // hash computation
    for (std::uint32_t n = 0; n < hashSize_; ++n) {
        auto e_rel = mem.load<std::int32_t>(hashAddr(slot) + kHashRel);
        if (e_rel == -1) {
            if (for_insert)
                return slot;
            throw std::runtime_error("BufferManager: block not resident");
        }
        if (e_rel == rel) {
            auto e_blk = mem.load<std::int32_t>(hashAddr(slot) + kHashBlk);
            if (e_blk == blk)
                return slot;
        }
        slot = (slot + 1) & (hashSize_ - 1);
    }
    throw std::runtime_error("BufferManager: lookup hash full");
}

sim::Addr
BufferManager::allocBlock(TracedMemory &setup, RelId rel, BlockNo blk,
                          sim::DataClass cls)
{
    if (numBlocks_ >= maxBlocks_)
        throw std::runtime_error("BufferManager: out of buffer blocks");

    sim::Addr page =
        setup.space().shared().alloc(kPageBytes, cls, kPageBytes);

    std::uint32_t idx = numBlocks_++;
    sim::Addr d = descAddr(idx);
    setup.store<std::int32_t>(d + kDescRel, rel);
    setup.store<std::int32_t>(d + kDescBlk, blk);
    setup.store<std::int32_t>(d + kDescPin, 0);
    setup.store<std::int32_t>(d + kDescFlags, 0);
    setup.store<std::uint64_t>(d + kDescPage, page);

    std::uint32_t slot = probeHash(setup, rel, blk, /*for_insert=*/true);
    setup.store<std::int32_t>(hashAddr(slot) + kHashRel, rel);
    setup.store<std::int32_t>(hashAddr(slot) + kHashBlk, blk);
    setup.store<std::int32_t>(hashAddr(slot) + kHashDesc,
                              static_cast<std::int32_t>(idx));
    hints_.push_back({page, cls, kNoHomeHint});
    blocks_.push_back({page, rel, blk, cls});
    return page;
}

sim::Addr
BufferManager::blockAddr(RelId rel, BlockNo blk) const
{
    for (const BlockInfo &b : blocks_) {
        if (b.rel == rel && b.blk == blk)
            return b.page;
    }
    throw std::runtime_error("BufferManager: blockAddr of unknown block");
}

void
BufferManager::describeRegions(
    obs::RegionMap &map,
    const std::function<std::string(RelId)> &rel_name) const
{
    map.add(lock_, 64, "BufMgrLock");
    map.addIndexed(descs_, maxBlocks_, kDescBytes, "buf descriptor");
    map.addIndexed(hash_, hashSize_, kHashEntryBytes, "buf lookup bucket");
    for (const BlockInfo &b : blocks_) {
        if (b.cls != sim::DataClass::Data)
            continue;
        map.add(b.page, kPageBytes,
                rel_name(b.rel) + " heap blk " + std::to_string(b.blk));
    }
}

void
BufferManager::hintHome(sim::Addr page, sim::ProcId home)
{
    for (PlacementHint &h : hints_) {
        if (h.page == page) {
            h.home = home;
            return;
        }
    }
    throw std::runtime_error("BufferManager: home hint for unknown block");
}

sim::Addr
BufferManager::pinPage(TracedMemory &mem, RelId rel, BlockNo blk)
{
    mem.lockAcquire(lock_);
    std::uint32_t slot = probeHash(mem, rel, blk, /*for_insert=*/false);
    auto idx = static_cast<std::uint32_t>(
        mem.load<std::int32_t>(hashAddr(slot) + kHashDesc));
    sim::Addr d = descAddr(idx);
    auto pin = mem.load<std::int32_t>(d + kDescPin);
    mem.store<std::int32_t>(d + kDescPin, pin + 1);
    auto page = mem.load<std::uint64_t>(d + kDescPage);
    mem.lockRelease(lock_);
    mem.busy(30); // ReadBuffer machinery outside the critical section
    return page;
}

void
BufferManager::unpinPage(TracedMemory &mem, RelId rel, BlockNo blk)
{
    mem.lockAcquire(lock_);
    std::uint32_t slot = probeHash(mem, rel, blk, /*for_insert=*/false);
    auto idx = static_cast<std::uint32_t>(
        mem.load<std::int32_t>(hashAddr(slot) + kHashDesc));
    sim::Addr d = descAddr(idx);
    auto pin = mem.load<std::int32_t>(d + kDescPin);
    if (pin <= 0)
        throw std::runtime_error("BufferManager: unpin of unpinned page");
    mem.store<std::int32_t>(d + kDescPin, pin - 1);
    mem.lockRelease(lock_);
    mem.busy(25);
}

std::int32_t
BufferManager::pinCountOf(TracedMemory &mem, RelId rel, BlockNo blk)
{
    std::uint32_t slot = probeHash(mem, rel, blk, /*for_insert=*/false);
    auto idx = static_cast<std::uint32_t>(
        mem.load<std::int32_t>(hashAddr(slot) + kHashDesc));
    return mem.load<std::int32_t>(descAddr(idx) + kDescPin);
}

} // namespace db
} // namespace dss
