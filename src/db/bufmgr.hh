/**
 * @file
 * Buffer Cache Module, after Postgres95 (paper Figure 4): 8 KB Buffer
 * Blocks holding database data and indices, Buffer Descriptors (control
 * structures), a Buffer Lookup Hash to find descriptors, and the global
 * BufMgrLock spinlock protecting them.
 *
 * The database is memory resident: every block is allocated at load time
 * and never evicted, but the *metadata discipline* is live — every page
 * access pins and unpins through the lookup hash under the spinlock, which
 * is exactly what produces the BufDesc/BufLook coherence misses and the
 * metalock traffic the paper measures.
 */

#ifndef DSS_DB_BUFMGR_HH
#define DSS_DB_BUFMGR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "db/common.hh"
#include "db/mem.hh"

namespace dss {
namespace obs {
class RegionMap;
} // namespace obs

namespace db {

class BufferManager
{
  public:
    /**
     * Allocate the shared metadata in @p setup's shared arena.
     * @param max_blocks Capacity of the descriptor array / lookup hash.
     */
    BufferManager(TracedMemory &setup, unsigned max_blocks);

    /**
     * Create and register a buffer block for (@p rel, @p blk), tagged
     * @p cls (Data for heap pages, Index for B-tree pages). Setup time.
     * @return simulated address of the 8 KB block.
     */
    sim::Addr allocBlock(TracedMemory &setup, RelId rel, BlockNo blk,
                         sim::DataClass cls);

    /**
     * Pin the block of (@p rel, @p blk): take BufMgrLock, probe the lookup
     * hash, bump the descriptor pin count, release.
     * @return simulated address of the block.
     */
    sim::Addr pinPage(TracedMemory &mem, RelId rel, BlockNo blk);

    /** Drop a pin (same metadata discipline as pinPage). */
    void unpinPage(TracedMemory &mem, RelId rel, BlockNo blk);

    /** The BufMgrLock word (a metalock; LockSLock class). */
    sim::Addr lockAddr() const { return lock_; }

    /**
     * One NUMA placement hint per allocated buffer block. Blocks are 8 KB
     * and 8 KB-aligned, so each hint covers exactly one simulated page;
     * home == nnodes (kNoHomeHint) means "no preference, let the policy
     * decide". The harness feeds explicit hints into
     * sim::PlacementPolicy::pinPage; the arena class map already carries
     * the DataClass for class-affinity.
     */
    struct PlacementHint
    {
        sim::Addr page = 0;     ///< block (= page) base address
        sim::DataClass cls = sim::DataClass::Data;
        sim::ProcId home = kNoHomeHint; ///< preferred node, or no hint
    };

    static constexpr sim::ProcId kNoHomeHint =
        static_cast<sim::ProcId>(~0u);

    /** Hints recorded at allocBlock time, in allocation order. */
    const std::vector<PlacementHint> &placementHints() const
    {
        return hints_;
    }

    /** Attach/replace the home hint of an already-allocated block. */
    void hintHome(sim::Addr page, sim::ProcId home);

    unsigned numBlocks() const { return numBlocks_; }
    unsigned maxBlocks() const { return maxBlocks_; }

    /** Host-side pin count of a descriptor, for tests. */
    std::int32_t pinCountOf(TracedMemory &mem, RelId rel, BlockNo blk);

    /**
     * Host-side address of an allocated block, for symbolization (no
     * traced references). Throws if (@p rel, @p blk) was never allocated.
     */
    sim::Addr blockAddr(RelId rel, BlockNo blk) const;

    /**
     * Register this manager's shared structures with the memory
     * profiler's symbol map: the BufMgrLock, the descriptor array, the
     * lookup hash, and every Data-class heap block as
     * "<relation> heap blk N" (via @p rel_name). Index-class blocks are
     * left for the owning BTree to label (describeRegions there).
     */
    void describeRegions(
        obs::RegionMap &map,
        const std::function<std::string(RelId)> &rel_name) const;

  private:
    static constexpr std::size_t kDescBytes = 32;
    static constexpr std::size_t kHashEntryBytes = 16;

    /** Find the lookup-hash slot of (@p rel, @p blk), traced probes. */
    std::uint32_t probeHash(TracedMemory &mem, RelId rel, BlockNo blk,
                            bool for_insert);

    sim::Addr descAddr(std::uint32_t idx) const
    {
        return descs_ + idx * kDescBytes;
    }

    sim::Addr hashAddr(std::uint32_t slot) const
    {
        return hash_ + slot * kHashEntryBytes;
    }

    /** Host-side record of every allocated block (symbolization). */
    struct BlockInfo
    {
        sim::Addr page = 0;
        RelId rel = -1;
        BlockNo blk = -1;
        sim::DataClass cls = sim::DataClass::Data;
    };

    unsigned maxBlocks_;
    unsigned numBlocks_ = 0;
    std::vector<PlacementHint> hints_;
    std::vector<BlockInfo> blocks_; ///< in allocation order
    std::uint32_t hashSize_; ///< power of two
    sim::Addr lock_ = 0;     ///< BufMgrLock
    sim::Addr descs_ = 0;    ///< BufferDesc[maxBlocks]
    sim::Addr hash_ = 0;     ///< lookup hash entries
};

} // namespace db
} // namespace dss

#endif // DSS_DB_BUFMGR_HH
