#include "db/expr.hh"

#include <stdexcept>

namespace dss {
namespace db {

namespace {

/** Numeric coercion: any int/double pair compares/computes as double. */
bool
bothInt(const Datum &a, const Datum &b)
{
    return std::holds_alternative<std::int64_t>(a) &&
           std::holds_alternative<std::int64_t>(b);
}

} // namespace

Datum
Expr::eval(const Row &row) const
{
    switch (kind_) {
      case Kind::Attr:
        return row.get(attr_);
      case Kind::Const:
        return value_;
      case Kind::Cmp: {
        Datum a = lhs_->eval(row);
        Datum b = rhs_->eval(row);
        int c;
        if (std::holds_alternative<std::string>(a)) {
            c = datumStr(a).compare(datumStr(b));
        } else if (bothInt(a, b)) {
            std::int64_t x = datumInt(a), y = datumInt(b);
            c = x < y ? -1 : x > y ? 1 : 0;
        } else {
            double x = datumReal(a), y = datumReal(b);
            c = x < y ? -1 : x > y ? 1 : 0;
        }
        bool v = false;
        switch (cmp_) {
          case CmpOp::Eq: v = c == 0; break;
          case CmpOp::Ne: v = c != 0; break;
          case CmpOp::Lt: v = c < 0; break;
          case CmpOp::Le: v = c <= 0; break;
          case CmpOp::Gt: v = c > 0; break;
          case CmpOp::Ge: v = c >= 0; break;
        }
        return Datum{static_cast<std::int64_t>(v)};
      }
      case Kind::Logic: {
        if (logic_ == LogicOp::Not)
            return Datum{static_cast<std::int64_t>(!lhs_->evalBool(row))};
        bool l = lhs_->evalBool(row);
        if (logic_ == LogicOp::And)
            return Datum{static_cast<std::int64_t>(l && rhs_->evalBool(row))};
        return Datum{static_cast<std::int64_t>(l || rhs_->evalBool(row))};
      }
      case Kind::Arith: {
        Datum a = lhs_->eval(row);
        Datum b = rhs_->eval(row);
        if (bothInt(a, b)) {
            std::int64_t x = datumInt(a), y = datumInt(b);
            switch (arith_) {
              case ArithOp::Add: return Datum{x + y};
              case ArithOp::Sub: return Datum{x - y};
              case ArithOp::Mul: return Datum{x * y};
            }
        }
        double x = datumReal(a), y = datumReal(b);
        switch (arith_) {
          case ArithOp::Add: return Datum{x + y};
          case ArithOp::Sub: return Datum{x - y};
          case ArithOp::Mul: return Datum{x * y};
        }
        break;
      }
    }
    throw std::logic_error("Expr::eval: bad node");
}

bool
Expr::evalBool(const Row &row) const
{
    Datum d = eval(row);
    if (std::holds_alternative<std::int64_t>(d))
        return datumInt(d) != 0;
    return datumReal(d) != 0.0;
}

ExprPtr
attr(std::size_t idx)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = Expr::Kind::Attr;
    e->attr_ = idx;
    return e;
}

ExprPtr
col(const Schema &schema, const std::string &name)
{
    return attr(schema.indexOf(name));
}

ExprPtr
lit(Datum v)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = Expr::Kind::Const;
    e->value_ = std::move(v);
    return e;
}

ExprPtr
litInt(std::int64_t v)
{
    return lit(Datum{v});
}

ExprPtr
litReal(double v)
{
    return lit(Datum{v});
}

ExprPtr
litStr(std::string v)
{
    return lit(Datum{std::move(v)});
}

ExprPtr
cmp(CmpOp op, ExprPtr l, ExprPtr r)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = Expr::Kind::Cmp;
    e->cmp_ = op;
    e->lhs_ = std::move(l);
    e->rhs_ = std::move(r);
    return e;
}

ExprPtr
logic(LogicOp op, ExprPtr l, ExprPtr r)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = Expr::Kind::Logic;
    e->logic_ = op;
    e->lhs_ = std::move(l);
    e->rhs_ = std::move(r);
    return e;
}

ExprPtr
arith(ArithOp op, ExprPtr l, ExprPtr r)
{
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = Expr::Kind::Arith;
    e->arith_ = op;
    e->lhs_ = std::move(l);
    e->rhs_ = std::move(r);
    return e;
}

ExprPtr
andAll(std::vector<ExprPtr> terms)
{
    if (terms.empty())
        throw std::invalid_argument("andAll: empty");
    ExprPtr acc = terms[0];
    for (std::size_t i = 1; i < terms.size(); ++i)
        acc = logic(LogicOp::And, acc, terms[i]);
    return acc;
}

ExprPtr
rangeHalfOpen(ExprPtr e, Datum lo, Datum hi)
{
    return logic(LogicOp::And, cmp(CmpOp::Ge, e, lit(std::move(lo))),
                 cmp(CmpOp::Lt, e, lit(std::move(hi))));
}

} // namespace db
} // namespace dss
