/**
 * @file
 * Engine-wide constants for the Postgres95-analog DBMS.
 */

#ifndef DSS_DB_COMMON_HH
#define DSS_DB_COMMON_HH

#include <cstdint>

namespace dss {
namespace db {

/** Buffer block / page size, as in Postgres95. */
constexpr std::size_t kPageBytes = 8 * 1024;

/** Relation identifier. */
using RelId = std::int32_t;

/** Block number within a relation's buffer-resident heap. */
using BlockNo = std::int32_t;

/** Transaction identifier. */
using Xid = std::uint32_t;

/** Tuple identifier: (block, slot) within a relation. */
struct Tid
{
    BlockNo block = 0;
    std::uint16_t slot = 0;

    bool operator==(const Tid &o) const
    {
        return block == o.block && slot == o.slot;
    }
};

} // namespace db
} // namespace dss

#endif // DSS_DB_COMMON_HH
