/**
 * @file
 * Engine-wide constants for the Postgres95-analog DBMS.
 */

#ifndef DSS_DB_COMMON_HH
#define DSS_DB_COMMON_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dss {
namespace db {

/** Buffer block / page size, as in Postgres95. */
constexpr std::size_t kPageBytes = 8 * 1024;

/** Relation identifier. */
using RelId = std::int32_t;

/** Block number within a relation's buffer-resident heap. */
using BlockNo = std::int32_t;

/** Transaction identifier. */
using Xid = std::uint32_t;

/** Tuple identifier: (block, slot) within a relation. */
struct Tid
{
    BlockNo block = 0;
    std::uint16_t slot = 0;

    bool operator==(const Tid &o) const
    {
        return block == o.block && slot == o.slot;
    }
};

/**
 * A query-level abort: the transaction cannot proceed (lock conflict, or
 * an injected fault) and must release its grants and retry. This is the
 * *recoverable* failure class — the harness retry path (harness/guard.hh)
 * catches it, backs off, and re-runs the query; it never crashes a bench.
 */
class QueryAbort : public std::runtime_error
{
  public:
    enum class Reason {
        WriteConflict,     ///< Write lock vs. existing readers/writers
        ReadWriteConflict, ///< Read lock vs. an existing writer
        Injected,          ///< scheduled by a sim::FaultPlan
    };

    QueryAbort(Reason reason, Xid xid, RelId rel, const std::string &what)
        : std::runtime_error(what), reason(reason), xid(xid), rel(rel)
    {}

    Reason reason;
    Xid xid;
    RelId rel;
};

} // namespace db
} // namespace dss

#endif // DSS_DB_COMMON_HH
