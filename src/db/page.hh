/**
 * @file
 * Slotted 8 KB pages, Postgres-style: a small header, a slot array growing
 * up, and tuple bodies growing down from the page end. Heap pages hold
 * table tuples (Data class); B-tree pages use their own layout (btree.hh)
 * but live in the same buffer blocks.
 */

#ifndef DSS_DB_PAGE_HH
#define DSS_DB_PAGE_HH

#include "db/common.hh"
#include "db/mem.hh"

namespace dss {
namespace db {

/**
 * Accessor for one slotted page at a fixed simulated address.
 *
 * Unlike classic Postgres pages (tuples packed downward from the page
 * end), tuple bodies are laid out at ascending addresses after a reserved
 * slot-array area. Sequential scans therefore walk ascending addresses,
 * which is what makes next-line data prefetching effective (Section 6 of
 * the paper measures gains for exactly this pattern).
 */
class PageRef
{
  public:
    PageRef(TracedMemory &mem, sim::Addr base) : mem_(mem), base_(base) {}

    /** Format an empty page (setup time). */
    void init();

    /**
     * Append a tuple (setup time).
     * @return slot index, or -1 if the page is full.
     */
    int addTuple(const void *data, std::size_t len);

    /** Number of occupied slots (traced header read). */
    std::uint16_t numSlots();

    /**
     * Simulated address of the tuple in @p slot (traced slot read).
     * @return 0 if the slot was deleted (tombstoned).
     */
    sim::Addr tupleAddr(std::uint16_t slot);

    /** Tombstone @p slot (delete; the body space is not reclaimed). */
    void killSlot(std::uint16_t slot);

    /** True if @p slot still holds a live tuple (traced slot read). */
    bool slotLive(std::uint16_t slot);

    /** Bytes still free between slot array and tuple space. */
    std::size_t freeSpace();

    sim::Addr base() const { return base_; }

    /** Maximum slots per page (bounded by the reserved slot area). */
    static constexpr std::uint16_t kMaxSlots = 252;

    /** Slot-array marker for deleted tuples. */
    static constexpr std::uint16_t kDeadSlot = 0xffff;

  private:
    // Header layout: {nslots u16, dataCursor u16}, then the slot array,
    // then tuple bodies at ascending offsets.
    static constexpr sim::Addr kNumSlotsOff = 0;
    static constexpr sim::Addr kDataCursorOff = 2;
    static constexpr sim::Addr kSlotArrayOff = 8;
    static constexpr sim::Addr kDataAreaOff =
        kSlotArrayOff + 2 * kMaxSlots + 4; // 8-byte aligned

    TracedMemory &mem_;
    sim::Addr base_;
};

} // namespace db
} // namespace dss

#endif // DSS_DB_PAGE_HH
