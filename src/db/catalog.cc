#include "db/catalog.hh"

#include <algorithm>
#include <stdexcept>

#include "db/page.hh"

namespace dss {
namespace db {

RelId
Catalog::createTable(TracedMemory &setup, std::string name, Schema schema)
{
    (void)setup;
    RelId id = nextRel_++;
    Relation r;
    r.id = id;
    r.name = name;
    r.schema = std::move(schema);
    byName_[r.name] = id;
    tables_.emplace(id, std::move(r));
    return id;
}

Tid
Catalog::insert(TracedMemory &setup, RelId rel,
                const std::vector<Datum> &values)
{
    Relation &r = relation(rel);
    std::vector<std::uint8_t> img = encodeTuple(r.schema, values);

    if (r.currentBlock == -1) {
        r.currentBlock = static_cast<BlockNo>(r.blocks.size());
        r.currentPage = bufmgr_.allocBlock(setup, rel, r.currentBlock,
                                           sim::DataClass::Data);
        r.blocks.push_back(r.currentBlock);
        PageRef(setup, r.currentPage).init();
    }

    PageRef page(setup, r.currentPage);
    int slot = page.addTuple(img.data(), img.size());
    if (slot < 0) {
        r.currentBlock = static_cast<BlockNo>(r.blocks.size());
        r.currentPage = bufmgr_.allocBlock(setup, rel, r.currentBlock,
                                           sim::DataClass::Data);
        r.blocks.push_back(r.currentBlock);
        PageRef fresh(setup, r.currentPage);
        fresh.init();
        slot = fresh.addTuple(img.data(), img.size());
        if (slot < 0)
            throw std::runtime_error("Catalog: tuple larger than a page");
    }
    ++r.numTuples;
    return Tid{r.currentBlock, static_cast<std::uint16_t>(slot)};
}

RelId
Catalog::createIndex(TracedMemory &setup, std::string name, RelId table,
                     std::size_t attr_idx)
{
    Relation &r = relation(table);
    if (attr_idx >= r.schema.numAttrs())
        throw std::out_of_range("createIndex: bad attribute");

    // Collect (key, tid) from the heap, sort, bulk-load.
    std::vector<BTree::Entry> entries;
    entries.reserve(r.numTuples);
    for (BlockNo blk : r.blocks) {
        sim::Addr page_addr = bufmgr_.pinPage(setup, table, blk);
        PageRef page(setup, page_addr);
        std::uint16_t n = page.numSlots();
        for (std::uint16_t s = 0; s < n; ++s) {
            sim::Addr t = page.tupleAddr(s);
            if (!t)
                continue; // deleted tuple
            Datum d = readAttr(setup, t, r.schema, attr_idx);
            entries.emplace_back(datumToKey(d), Tid{blk, s});
        }
        bufmgr_.unpinPage(setup, table, blk);
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const BTree::Entry &a, const BTree::Entry &b) {
                         return a.first < b.first;
                     });

    RelId id = nextRel_++;
    auto tree = std::make_unique<BTree>(id, bufmgr_);
    tree->build(setup, entries);
    indices_.emplace(id, std::move(tree));
    indexByAttr_[{table, attr_idx}] = id;
    indicesByTable_[table].emplace_back(attr_idx, id);
    byName_[name] = id;
    return id;
}

Relation &
Catalog::relation(RelId id)
{
    auto it = tables_.find(id);
    if (it == tables_.end())
        throw std::out_of_range("Catalog: unknown relation");
    return it->second;
}

const Relation &
Catalog::relation(RelId id) const
{
    auto it = tables_.find(id);
    if (it == tables_.end())
        throw std::out_of_range("Catalog: unknown relation");
    return it->second;
}

RelId
Catalog::relIdOf(const std::string &name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        throw std::out_of_range("Catalog: unknown name " + name);
    return it->second;
}

std::string
Catalog::nameOf(RelId id) const
{
    auto t = tables_.find(id);
    if (t != tables_.end())
        return t->second.name;
    for (const auto &[name, rel] : byName_) {
        if (rel == id)
            return name;
    }
    return "rel" + std::to_string(id);
}

std::vector<RelId>
Catalog::allRelIds() const
{
    std::vector<RelId> out;
    out.reserve(tables_.size() + indices_.size());
    for (const auto &[id, rel] : tables_)
        out.push_back(id);
    for (const auto &[id, tree] : indices_)
        out.push_back(id);
    std::sort(out.begin(), out.end());
    return out;
}

void
Catalog::describeRegions(obs::RegionMap &map) const
{
    bufmgr_.describeRegions(map, [this](RelId r) { return nameOf(r); });
    lockmgr_.describeRegions(map);
    for (const auto &[rel, tree] : indices_)
        tree->describeRegions(map, nameOf(rel));
}

const BTree *
Catalog::findIndex(RelId table, std::size_t attr_idx) const
{
    auto it = indexByAttr_.find({table, attr_idx});
    if (it == indexByAttr_.end())
        return nullptr;
    return &index(it->second);
}

const BTree &
Catalog::index(RelId index_rel) const
{
    auto it = indices_.find(index_rel);
    if (it == indices_.end())
        throw std::out_of_range("Catalog: unknown index");
    return *it->second;
}

BTree &
Catalog::indexMut(RelId index_rel)
{
    auto it = indices_.find(index_rel);
    if (it == indices_.end())
        throw std::out_of_range("Catalog: unknown index");
    return *it->second;
}

std::vector<std::pair<std::size_t, BTree *>>
Catalog::indicesOf(RelId table)
{
    std::vector<std::pair<std::size_t, BTree *>> out;
    auto it = indicesByTable_.find(table);
    if (it == indicesByTable_.end())
        return out;
    for (const auto &[attr, rel] : it->second)
        out.emplace_back(attr, &indexMut(rel));
    return out;
}

} // namespace db
} // namespace dss
