/**
 * @file
 * TracedMemory: the DBMS's window onto simulated memory.
 *
 * Every load/store the engine performs on traced structures goes through
 * one of these handles, which (a) reads or writes the real host backing of
 * the arena, so the engine computes correct query results, and (b) emits a
 * TraceEntry tagged with the DataClass of the touched address, so the
 * Machine can replay the reference stream.
 *
 * One handle exists per simulated process. The engine's own stack/static
 * data is ordinary C++ state and is *not* traced — this is precisely the
 * paper's second scaling correction (private stack and static references
 * are assumed to always hit).
 */

#ifndef DSS_DB_MEM_HH
#define DSS_DB_MEM_HH

#include <cstring>
#include <string>

#include "sim/arena.hh"
#include "sim/trace.hh"

namespace dss {
namespace db {

class TracedMemory
{
  public:
    using Addr = sim::Addr;

    TracedMemory(sim::AddressSpace &space, sim::ProcId proc,
                 sim::TraceSink &sink)
        : space_(space), proc_(proc), sink_(&sink)
    {}

    sim::AddressSpace &space() { return space_; }
    sim::ProcId proc() const { return proc_; }

    /** Redirect trace output (e.g. swap in a NullSink during setup). */
    void setSink(sim::TraceSink &sink) { sink_ = &sink; }

    /** Typed load; emits one Read event. */
    template <typename T>
    T
    load(Addr addr)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        T v;
        std::memcpy(&v, hostOf(addr), sizeof(T));
        sink_->record(sim::TraceEntry::read(addr, classOf(addr),
                                            sizeof(T)));
        return v;
    }

    /** Typed store; emits one Write event. */
    template <typename T>
    void
    store(Addr addr, T v)
    {
        static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
        std::memcpy(hostOf(addr), &v, sizeof(T));
        sink_->record(sim::TraceEntry::write(addr, classOf(addr),
                                             sizeof(T)));
    }

    /** Bulk load; emits one Read event per 8-byte word. */
    void loadBytes(Addr addr, void *dst, std::size_t n);

    /** Bulk store; emits one Write event per 8-byte word. */
    void storeBytes(Addr addr, const void *src, std::size_t n);

    /** Traced memory-to-memory copy (shared tuple -> private slot). */
    void copy(Addr dst, Addr src, std::size_t n);

    /** Compare @p n traced bytes at @p addr against host memory @p s. */
    int compareBytes(Addr addr, const void *s, std::size_t n);

    /** Account @p cycles of pure compute. */
    void
    busy(std::uint32_t cycles)
    {
        sink_->record(sim::TraceEntry::busy(cycles));
    }

    /** Metalock acquire marker (resolved dynamically by the Machine). */
    void
    lockAcquire(Addr word)
    {
        sink_->record(sim::TraceEntry::lockAcq(word, classOf(word)));
    }

    /** Metalock release marker. */
    void
    lockRelease(Addr word)
    {
        sink_->record(sim::TraceEntry::lockRel(word, classOf(word)));
    }

    /** Untyped host pointer (setup-time initialization only). */
    std::uint8_t *hostOf(Addr addr);

    sim::DataClass classOf(Addr addr) const { return space_.classOf(addr); }

  private:
    sim::AddressSpace &space_;
    sim::ProcId proc_;
    sim::TraceSink *sink_;
};

/**
 * Bump allocator over a process's private arena with mark/rewind, so each
 * query run reuses the same private heap addresses (the paper notes the
 * same private storage is reused for all selected tuples).
 */
class PrivateHeap
{
  public:
    PrivateHeap(sim::AddressSpace &space, sim::ProcId proc)
        : arena_(space.priv(proc))
    {}

    sim::Addr
    alloc(std::size_t bytes, std::size_t align = 8)
    {
        return arena_.alloc(bytes, sim::DataClass::Priv, align);
    }

    /** Current allocation mark. */
    std::size_t mark() const { return arena_.used(); }

    /** Rewind to a previous mark (frees everything allocated after it). */
    void rewind(std::size_t mark);

  private:
    sim::MemArena &arena_;
};

} // namespace db
} // namespace dss

#endif // DSS_DB_MEM_HH
