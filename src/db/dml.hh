/**
 * @file
 * Runtime data modification (the update side the paper left as future
 * work — "other types of queries that contain frequent writes").
 *
 * Unlike Catalog::insert (untraced bulk loading at setup time), these
 * functions run through the full engine discipline: relation-level
 * *write* datalocks, buffer pins, traced heap writes, and traced B-tree
 * maintenance on every index of the table. Deletion tombstones the heap
 * slot; index entries are left behind and skipped at fetch time (lazy
 * cleanup, as real systems do).
 *
 * Postgres95's datalocks are relation-level only (paper Section 4.1.1),
 * which is exactly why write-intensive queries serialize on these locks;
 * bench/ext_update_queries measures that behaviour.
 */

#ifndef DSS_DB_DML_HH
#define DSS_DB_DML_HH

#include "db/exec.hh"

namespace dss {
namespace db {

/**
 * Append one row to @p table and maintain all of its indices.
 * Caller must hold (or not need) the relation write lock; use
 * lockForWrite()/unlockWrite() around a batch, as a real statement would.
 * @return the new tuple's id.
 */
Tid heapInsert(ExecContext &ctx, RelId table,
               const std::vector<Datum> &values);

/**
 * Tombstone the tuple at @p tid.
 * @return false if the tuple was already deleted.
 */
bool heapDelete(ExecContext &ctx, RelId table, Tid tid);

/** Take the relation-level write datalock for this statement. */
void lockForWrite(ExecContext &ctx, RelId table);

/** Release the relation-level write datalock. */
void unlockWrite(ExecContext &ctx, RelId table);

/** Host-side count of live tuples (reference checks in tests). */
std::uint64_t countLiveTuples(ExecContext &ctx, RelId table);

} // namespace db
} // namespace dss

#endif // DSS_DB_DML_HH
