#include "db/lockmgr.hh"

#include <stdexcept>

#include "obs/lineinfo.hh"

namespace dss {
namespace db {

namespace {

// Lock hash entry (16 bytes): {rel, readHolders, writeHolders, pad}.
constexpr sim::Addr kLockRel = 0;
constexpr sim::Addr kLockReaders = 4;
constexpr sim::Addr kLockWriters = 8;

// Xid hash entry (16 bytes): {xid, rel, count, mode}.
constexpr sim::Addr kXidXid = 0;
constexpr sim::Addr kXidRel = 4;
constexpr sim::Addr kXidCount = 8;
constexpr sim::Addr kXidMode = 12;

std::uint32_t
nextPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

LockManager::LockManager(TracedMemory &setup, unsigned max_locks,
                         unsigned max_xid_entries)
    : lockHashSize_(nextPow2(max_locks * 2)),
      xidHashSize_(nextPow2(max_xid_entries * 2))
{
    sim::MemArena &arena = setup.space().shared();
    lock_ = arena.alloc(64, sim::DataClass::LockSLock, 64);
    lockHash_ = arena.alloc(lockHashSize_ * kLockEntryBytes,
                            sim::DataClass::LockHash, 64);
    xidHash_ = arena.alloc(xidHashSize_ * kXidEntryBytes,
                           sim::DataClass::XidHash, 64);
    for (std::uint32_t s = 0; s < lockHashSize_; ++s)
        setup.store<std::int32_t>(lockEntry(s) + kLockRel, -1);
    for (std::uint32_t s = 0; s < xidHashSize_; ++s)
        setup.store<std::int32_t>(xidEntry(s) + kXidRel, -1);
}

std::uint32_t
LockManager::probeLockHash(TracedMemory &mem, RelId rel)
{
    auto slot = (static_cast<std::uint32_t>(rel) * 2654435761u) &
                (lockHashSize_ - 1);
    mem.busy(2);
    for (std::uint32_t n = 0; n < lockHashSize_; ++n) {
        auto e_rel = mem.load<std::int32_t>(lockEntry(slot) + kLockRel);
        if (e_rel == rel || e_rel == -1)
            return slot;
        slot = (slot + 1) & (lockHashSize_ - 1);
    }
    throw std::runtime_error("LockManager: lock hash full");
}

std::uint32_t
LockManager::probeXidHash(TracedMemory &mem, Xid xid, RelId rel)
{
    auto slot = (xid * 2654435761u ^
                 static_cast<std::uint32_t>(rel) * 40503u) &
                (xidHashSize_ - 1);
    mem.busy(2);
    for (std::uint32_t n = 0; n < xidHashSize_; ++n) {
        auto e_rel = mem.load<std::int32_t>(xidEntry(slot) + kXidRel);
        if (e_rel == -1)
            return slot;
        if (e_rel == rel) {
            auto e_xid = mem.load<std::uint32_t>(xidEntry(slot) + kXidXid);
            if (e_xid == xid)
                return slot;
        }
        slot = (slot + 1) & (xidHashSize_ - 1);
    }
    throw std::runtime_error("LockManager: xid hash full");
}

bool
LockManager::lockRelation(TracedMemory &mem, Xid xid, RelId rel,
                          LockMode mode)
{
    mem.lockAcquire(lock_);

    std::uint32_t ls = probeLockHash(mem, rel);
    auto e_rel = mem.load<std::int32_t>(lockEntry(ls) + kLockRel);
    if (e_rel == -1)
        mem.store<std::int32_t>(lockEntry(ls) + kLockRel, rel);

    if (mode == LockMode::Read) {
        auto writers = mem.load<std::int32_t>(lockEntry(ls) + kLockWriters);
        if (writers != 0) {
            // No lock waiting in the simulated DBMS: conflicts abort the
            // query, and the harness retries it with backoff.
            mem.lockRelease(lock_);
            throw QueryAbort(QueryAbort::Reason::ReadWriteConflict, xid,
                             rel,
                             "LockManager: read/write conflict on rel " +
                                 std::to_string(rel));
        }
        auto readers = mem.load<std::int32_t>(lockEntry(ls) + kLockReaders);
        mem.store<std::int32_t>(lockEntry(ls) + kLockReaders, readers + 1);
    } else {
        auto readers = mem.load<std::int32_t>(lockEntry(ls) + kLockReaders);
        auto writers = mem.load<std::int32_t>(lockEntry(ls) + kLockWriters);
        if (readers != 0 || writers != 0) {
            mem.lockRelease(lock_);
            throw QueryAbort(QueryAbort::Reason::WriteConflict, xid, rel,
                             "LockManager: write conflict on rel " +
                                 std::to_string(rel));
        }
        mem.store<std::int32_t>(lockEntry(ls) + kLockWriters, writers + 1);
    }

    std::uint32_t xs = probeXidHash(mem, xid, rel);
    auto x_rel = mem.load<std::int32_t>(xidEntry(xs) + kXidRel);
    if (x_rel == -1) {
        mem.store<std::uint32_t>(xidEntry(xs) + kXidXid, xid);
        mem.store<std::int32_t>(xidEntry(xs) + kXidRel, rel);
        mem.store<std::int32_t>(xidEntry(xs) + kXidCount, 1);
        mem.store<std::int32_t>(xidEntry(xs) + kXidMode,
                                static_cast<std::int32_t>(mode));
    } else {
        auto cnt = mem.load<std::int32_t>(xidEntry(xs) + kXidCount);
        mem.store<std::int32_t>(xidEntry(xs) + kXidCount, cnt + 1);
    }

    mem.lockRelease(lock_);
    mem.busy(6); // lock-manager bookkeeping
    return true;
}

void
LockManager::unlockRelation(TracedMemory &mem, Xid xid, RelId rel,
                            LockMode mode)
{
    mem.lockAcquire(lock_);

    std::uint32_t xs = probeXidHash(mem, xid, rel);
    auto x_rel = mem.load<std::int32_t>(xidEntry(xs) + kXidRel);
    if (x_rel != rel)
        throw std::runtime_error("LockManager: unlock without lock");
    auto cnt = mem.load<std::int32_t>(xidEntry(xs) + kXidCount);
    mem.store<std::int32_t>(xidEntry(xs) + kXidCount, cnt - 1);

    std::uint32_t ls = probeLockHash(mem, rel);
    const sim::Addr holders =
        lockEntry(ls) + (mode == LockMode::Read ? kLockReaders
                                                : kLockWriters);
    auto n = mem.load<std::int32_t>(holders);
    if (n <= 0)
        throw std::runtime_error("LockManager: holder underflow");
    mem.store<std::int32_t>(holders, n - 1);

    mem.lockRelease(lock_);
    mem.busy(5);
}

void
LockManager::releaseAll(TracedMemory &mem, Xid xid)
{
    // Walk the xid hash (traced) and drop every remaining grant.
    for (std::uint32_t s = 0; s < xidHashSize_; ++s) {
        auto e_rel = mem.load<std::int32_t>(xidEntry(s) + kXidRel);
        if (e_rel == -1)
            continue;
        auto e_xid = mem.load<std::uint32_t>(xidEntry(s) + kXidXid);
        if (e_xid != xid)
            continue;
        auto cnt = mem.load<std::int32_t>(xidEntry(s) + kXidCount);
        const auto mode = static_cast<LockMode>(
            mem.load<std::int32_t>(xidEntry(s) + kXidMode));
        while (cnt-- > 0)
            unlockRelation(mem, xid, e_rel, mode);
    }
}

void
LockManager::sweepXid(TracedMemory &mem, Xid xid)
{
    for (std::uint32_t s = 0; s < xidHashSize_; ++s) {
        auto e_rel = mem.load<std::int32_t>(xidEntry(s) + kXidRel);
        if (e_rel == -1)
            continue;
        auto e_xid = mem.load<std::uint32_t>(xidEntry(s) + kXidXid);
        if (e_xid != xid)
            continue;
        auto cnt = mem.load<std::int32_t>(xidEntry(s) + kXidCount);
        if (cnt > 0)
            continue;
        mem.store<std::int32_t>(xidEntry(s) + kXidRel, -1);
        mem.store<std::uint32_t>(xidEntry(s) + kXidXid, 0);
        mem.store<std::int32_t>(xidEntry(s) + kXidCount, 0);
        mem.store<std::int32_t>(xidEntry(s) + kXidMode, 0);
    }
}

std::int32_t
LockManager::holdersOf(TracedMemory &mem, RelId rel)
{
    std::uint32_t ls = probeLockHash(mem, rel);
    return mem.load<std::int32_t>(lockEntry(ls) + kLockReaders);
}

void
LockManager::describeRegions(obs::RegionMap &map) const
{
    map.add(lock_, 64, "LockMgrLock");
    map.addIndexed(lockHash_, lockHashSize_, kLockEntryBytes,
                   "lock hash bucket");
    map.addIndexed(xidHash_, xidHashSize_, kXidEntryBytes,
                   "xid hash bucket");
}

} // namespace db
} // namespace dss
