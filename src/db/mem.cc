#include "db/mem.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dss {
namespace db {

std::uint8_t *
TracedMemory::hostOf(Addr addr)
{
    sim::MemArena *a = space_.arenaOf(addr);
    if (!a)
        throw std::runtime_error("TracedMemory: unmapped address");
    return a->host(addr);
}

void
TracedMemory::loadBytes(Addr addr, void *dst, std::size_t n)
{
    std::memcpy(dst, hostOf(addr), n);
    for (std::size_t off = 0; off < n; off += 8) {
        auto sz = static_cast<std::uint8_t>(std::min<std::size_t>(8, n - off));
        sink_->record(
            sim::TraceEntry::read(addr + off, classOf(addr + off), sz));
    }
}

void
TracedMemory::storeBytes(Addr addr, const void *src, std::size_t n)
{
    std::memcpy(hostOf(addr), src, n);
    for (std::size_t off = 0; off < n; off += 8) {
        auto sz = static_cast<std::uint8_t>(std::min<std::size_t>(8, n - off));
        sink_->record(
            sim::TraceEntry::write(addr + off, classOf(addr + off), sz));
    }
}

void
TracedMemory::copy(Addr dst, Addr src, std::size_t n)
{
    std::memcpy(hostOf(dst), hostOf(src), n);
    for (std::size_t off = 0; off < n; off += 8) {
        auto sz = static_cast<std::uint8_t>(std::min<std::size_t>(8, n - off));
        sink_->record(
            sim::TraceEntry::read(src + off, classOf(src + off), sz));
        sink_->record(
            sim::TraceEntry::write(dst + off, classOf(dst + off), sz));
    }
}

int
TracedMemory::compareBytes(Addr addr, const void *s, std::size_t n)
{
    for (std::size_t off = 0; off < n; off += 8) {
        auto sz = static_cast<std::uint8_t>(std::min<std::size_t>(8, n - off));
        sink_->record(
            sim::TraceEntry::read(addr + off, classOf(addr + off), sz));
    }
    return std::memcmp(hostOf(addr), s, n);
}

void
PrivateHeap::rewind(std::size_t mark)
{
    arena_.rewind(mark);
}

} // namespace db
} // namespace dss
