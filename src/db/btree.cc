#include "db/btree.hh"

#include <cassert>
#include <stdexcept>

#include "obs/lineinfo.hh"

namespace dss {
namespace db {

namespace {

// Leaf entry: {key i64, block i32, slot i32}; internal: {key i64, child i32}.
constexpr sim::Addr kEntryKey = 0;
constexpr sim::Addr kEntryBlock = 8;
constexpr sim::Addr kEntrySlot = 12;
constexpr sim::Addr kEntryChild = 8;

} // namespace

void
BTree::build(TracedMemory &setup, const std::vector<Entry> &sorted)
{
    if (root_ != -1)
        throw std::runtime_error("BTree: already built");
#ifndef NDEBUG
    for (std::size_t i = 1; i < sorted.size(); ++i)
        assert(sorted[i - 1].first <= sorted[i].first && "input not sorted");
#endif

    // ~80% fill factor, as a freshly loaded tree would have.
    const std::uint16_t fill = static_cast<std::uint16_t>(
        std::max<std::size_t>(2, kMaxEntries * 4 / 5));

    // Build the leaf level.
    std::vector<std::pair<Key, BlockNo>> level; // (first key, block)
    std::size_t i = 0;
    do {
        const std::size_t n =
            std::min<std::size_t>(fill, sorted.size() - i);
        const BlockNo blk = static_cast<BlockNo>(numPages_++);
        sim::Addr page = bufmgr_.allocBlock(setup, rel_, blk,
                                            sim::DataClass::Index);
        setup.store<std::uint16_t>(page + kIsLeafOff, 1);
        setup.store<std::uint16_t>(page + kNumKeysOff,
                                   static_cast<std::uint16_t>(n));
        const bool last = i + n >= sorted.size();
        setup.store<std::int32_t>(page + kRightSibOff, last ? -1 : blk + 1);
        for (std::size_t e = 0; e < n; ++e) {
            const Entry &ent = sorted[i + e];
            sim::Addr a = entryAddr(page, static_cast<std::uint16_t>(e));
            setup.store<std::int64_t>(a + kEntryKey, ent.first);
            setup.store<std::int32_t>(a + kEntryBlock, ent.second.block);
            setup.store<std::int32_t>(a + kEntrySlot, ent.second.slot);
        }
        level.emplace_back(n ? sorted[i].first : 0, blk);
        pageLevel_.push_back(1);
        i += n;
    } while (i < sorted.size());
    height_ = 1;

    // Build internal levels up to a single root.
    while (level.size() > 1) {
        std::vector<std::pair<Key, BlockNo>> upper;
        std::size_t j = 0;
        while (j < level.size()) {
            const std::size_t n =
                std::min<std::size_t>(fill, level.size() - j);
            const BlockNo blk = static_cast<BlockNo>(numPages_++);
            sim::Addr page = bufmgr_.allocBlock(setup, rel_, blk,
                                                sim::DataClass::Index);
            setup.store<std::uint16_t>(page + kIsLeafOff, 0);
            setup.store<std::uint16_t>(page + kNumKeysOff,
                                       static_cast<std::uint16_t>(n));
            setup.store<std::int32_t>(page + kRightSibOff, -1);
            for (std::size_t e = 0; e < n; ++e) {
                sim::Addr a = entryAddr(page, static_cast<std::uint16_t>(e));
                setup.store<std::int64_t>(a + kEntryKey, level[j + e].first);
                setup.store<std::int32_t>(a + kEntryChild,
                                          level[j + e].second);
            }
            upper.emplace_back(level[j].first, blk);
            pageLevel_.push_back(height_ + 1);
            j += n;
        }
        level.swap(upper);
        ++height_;
    }
    root_ = level.front().second;
}

std::uint16_t
BTree::searchPage(TracedMemory &mem, sim::Addr page, std::uint16_t nkeys,
                  Key key) const
{
    // Standard in-page binary search; each probe is a traced key load.
    std::uint16_t lo = 0, hi = nkeys;
    while (lo < hi) {
        std::uint16_t mid = static_cast<std::uint16_t>((lo + hi) / 2);
        Key k = mem.load<std::int64_t>(entryAddr(page, mid) + kEntryKey);
        mem.busy(6); // comparison-function dispatch per probe step
        if (k < key)
            lo = static_cast<std::uint16_t>(mid + 1);
        else
            hi = mid;
    }
    return lo;
}

BlockNo
BTree::descend(TracedMemory &mem, Key key, sim::Addr *leaf_page) const
{
    if (root_ == -1)
        throw std::runtime_error("BTree: not built");
    BlockNo blk = root_;
    for (int lvl = height_; lvl > 1; --lvl) {
        sim::Addr page = bufmgr_.pinPage(mem, rel_, blk);
        auto nkeys = mem.load<std::uint16_t>(page + kNumKeysOff);
        std::uint16_t idx = searchPage(mem, page, nkeys, key);
        // Child idx-1 covers [key_{idx-1}, key_idx); stepping one left when
        // key_idx == key also catches duplicates spanning the boundary.
        if (idx > 0)
            --idx;
        auto child =
            mem.load<std::int32_t>(entryAddr(page, idx) + kEntryChild);
        bufmgr_.unpinPage(mem, rel_, blk);
        mem.busy(60); // per-level descent machinery
        blk = child;
    }
    *leaf_page = bufmgr_.pinPage(mem, rel_, blk);
    return blk;
}

BTree::Cursor
BTree::seek(TracedMemory &mem, Key key) const
{
    Cursor c;
    c.tree_ = this;
    sim::Addr page = 0;
    BlockNo blk = descend(mem, key, &page);

    // Skip forward to the first entry with key >= target (the conservative
    // one-left descend may land a leaf early).
    for (;;) {
        auto nkeys = mem.load<std::uint16_t>(page + kNumKeysOff);
        std::uint16_t pos = searchPage(mem, page, nkeys, key);
        if (pos < nkeys) {
            c.block_ = blk;
            c.page_ = page;
            c.pos_ = pos;
            return c;
        }
        auto sib = mem.load<std::int32_t>(page + kRightSibOff);
        bufmgr_.unpinPage(mem, rel_, blk);
        if (sib == -1)
            return c; // closed cursor: key beyond the last entry
        blk = sib;
        page = bufmgr_.pinPage(mem, rel_, blk);
    }
}

BTree::Cursor
BTree::begin(TracedMemory &mem) const
{
    Cursor c;
    c.tree_ = this;
    sim::Addr page = 0;
    // Leaf 0 is the leftmost leaf by construction.
    c.block_ = 0;
    c.page_ = bufmgr_.pinPage(mem, rel_, 0);
    c.pos_ = 0;
    (void)page;
    return c;
}

bool
BTree::Cursor::next(TracedMemory &mem, Key &key, Tid &tid)
{
    while (block_ != -1) {
        auto nkeys = mem.load<std::uint16_t>(page_ + kNumKeysOff);
        if (pos_ < nkeys) {
            sim::Addr a = tree_->entryAddr(page_, pos_);
            key = mem.load<std::int64_t>(a + kEntryKey);
            tid.block = mem.load<std::int32_t>(a + kEntryBlock);
            tid.slot = static_cast<std::uint16_t>(
                mem.load<std::int32_t>(a + kEntrySlot));
            ++pos_;
            return true;
        }
        auto sib = mem.load<std::int32_t>(page_ + kRightSibOff);
        tree_->bufmgr_.unpinPage(mem, tree_->rel_, block_);
        if (sib == -1) {
            block_ = -1;
            page_ = 0;
            return false;
        }
        block_ = sib;
        page_ = tree_->bufmgr_.pinPage(mem, tree_->rel_, block_);
        pos_ = 0;
    }
    return false;
}

void
BTree::Cursor::close(TracedMemory &mem)
{
    if (block_ != -1) {
        tree_->bufmgr_.unpinPage(mem, tree_->rel_, block_);
        block_ = -1;
        page_ = 0;
    }
}

BlockNo
BTree::allocPage(TracedMemory &mem, bool leaf, BlockNo right_sib, int level)
{
    const BlockNo blk = static_cast<BlockNo>(numPages_++);
    sim::Addr page =
        bufmgr_.allocBlock(mem, rel_, blk, sim::DataClass::Index);
    mem.store<std::uint16_t>(page + kIsLeafOff, leaf ? 1 : 0);
    mem.store<std::uint16_t>(page + kNumKeysOff, 0);
    mem.store<std::int32_t>(page + kRightSibOff, right_sib);
    pageLevel_.push_back(level);
    return blk;
}

void
BTree::placeEntry(TracedMemory &mem, sim::Addr page, std::uint16_t nkeys,
                  std::uint16_t pos, Key key, std::int32_t v0,
                  std::int32_t v1)
{
    assert(nkeys < kMaxEntries);
    // Shift the tail right by one entry (traced copies, like a real page).
    for (std::uint16_t i = nkeys; i > pos; --i)
        mem.copy(entryAddr(page, i), entryAddr(page, i - 1), kEntryBytes);
    mem.busy(2u * (nkeys - pos) + 4); // the memmove's instruction cost
    sim::Addr a = entryAddr(page, pos);
    mem.store<std::int64_t>(a + kEntryKey, key);
    mem.store<std::int32_t>(a + kEntryBlock, v0);
    mem.store<std::int32_t>(a + kEntrySlot, v1);
    mem.store<std::uint16_t>(page + kNumKeysOff,
                             static_cast<std::uint16_t>(nkeys + 1));
}

BTree::Split
BTree::splitPage(TracedMemory &mem, BlockNo blk, sim::Addr page, bool leaf,
                 int level)
{
    (void)blk; // kept for symmetry with insertInto's pin bookkeeping
    auto nkeys = mem.load<std::uint16_t>(page + kNumKeysOff);
    const auto mid = static_cast<std::uint16_t>(nkeys / 2);

    auto old_sib = mem.load<std::int32_t>(page + kRightSibOff);
    BlockNo new_blk = allocPage(mem, leaf, leaf ? old_sib : -1, level);
    sim::Addr new_page = bufmgr_.pinPage(mem, rel_, new_blk);

    for (std::uint16_t i = mid; i < nkeys; ++i) {
        mem.copy(entryAddr(new_page, static_cast<std::uint16_t>(i - mid)),
                 entryAddr(page, i), kEntryBytes);
    }
    mem.store<std::uint16_t>(new_page + kNumKeysOff,
                             static_cast<std::uint16_t>(nkeys - mid));
    mem.store<std::uint16_t>(page + kNumKeysOff, mid);
    if (leaf)
        mem.store<std::int32_t>(page + kRightSibOff, new_blk);

    Split out;
    out.happened = true;
    out.sepKey = mem.load<std::int64_t>(entryAddr(new_page, 0) + kEntryKey);
    out.newBlock = new_blk;
    bufmgr_.unpinPage(mem, rel_, new_blk);
    return out;
}

BTree::Split
BTree::insertInto(TracedMemory &mem, BlockNo blk, int level, Key key,
                  Tid tid)
{
    sim::Addr page = bufmgr_.pinPage(mem, rel_, blk);
    auto nkeys = mem.load<std::uint16_t>(page + kNumKeysOff);

    if (level == 1) {
        // Leaf: make room (splitting first if full), then place.
        Split split;
        if (nkeys >= kMaxEntries) {
            split = splitPage(mem, blk, page, /*leaf=*/true, level);
            if (key >= split.sepKey) {
                bufmgr_.unpinPage(mem, rel_, blk);
                blk = split.newBlock;
                page = bufmgr_.pinPage(mem, rel_, blk);
            }
            nkeys = mem.load<std::uint16_t>(page + kNumKeysOff);
        }
        std::uint16_t pos = searchPage(mem, page, nkeys, key);
        placeEntry(mem, page, nkeys, pos, key, tid.block,
                   static_cast<std::int32_t>(tid.slot));
        bufmgr_.unpinPage(mem, rel_, blk);
        return split;
    }

    // Internal: find the child, recurse, absorb any child split.
    std::uint16_t idx = searchPage(mem, page, nkeys, key);
    if (idx > 0)
        --idx;
    auto child = mem.load<std::int32_t>(entryAddr(page, idx) + kEntryChild);
    bufmgr_.unpinPage(mem, rel_, blk);

    Split child_split = insertInto(mem, child, level - 1, key, tid);
    if (!child_split.happened)
        return {};

    page = bufmgr_.pinPage(mem, rel_, blk);
    nkeys = mem.load<std::uint16_t>(page + kNumKeysOff);
    Split split;
    if (nkeys >= kMaxEntries) {
        split = splitPage(mem, blk, page, /*leaf=*/false, level);
        if (child_split.sepKey >= split.sepKey) {
            bufmgr_.unpinPage(mem, rel_, blk);
            blk = split.newBlock;
            page = bufmgr_.pinPage(mem, rel_, blk);
        }
        nkeys = mem.load<std::uint16_t>(page + kNumKeysOff);
    }
    std::uint16_t pos = searchPage(mem, page, nkeys, child_split.sepKey);
    placeEntry(mem, page, nkeys, pos, child_split.sepKey,
               child_split.newBlock, 0);
    bufmgr_.unpinPage(mem, rel_, blk);
    return split;
}

void
BTree::insert(TracedMemory &mem, Key key, Tid tid)
{
    if (root_ == -1)
        throw std::runtime_error("BTree: insert into unbuilt tree");
    Split split = insertInto(mem, root_, height_, key, tid);
    if (!split.happened)
        return;

    // Root split: a new root with two children.
    sim::Addr old_root = bufmgr_.pinPage(mem, rel_, root_);
    Key first_key =
        mem.load<std::int64_t>(entryAddr(old_root, 0) + kEntryKey);
    bufmgr_.unpinPage(mem, rel_, root_);

    BlockNo new_root = allocPage(mem, /*leaf=*/false, -1, height_ + 1);
    sim::Addr page = bufmgr_.pinPage(mem, rel_, new_root);
    placeEntry(mem, page, 0, 0, first_key, root_, 0);
    placeEntry(mem, page, 1, 1, split.sepKey, split.newBlock, 0);
    bufmgr_.unpinPage(mem, rel_, new_root);
    root_ = new_root;
    ++height_;
}

void
BTree::describeRegions(obs::RegionMap &map, const std::string &name) const
{
    for (BlockNo b = 0; b < static_cast<BlockNo>(numPages_); ++b) {
        const sim::Addr page = bufmgr_.blockAddr(rel_, b);
        const int lvl = pageLevel_[static_cast<std::size_t>(b)];
        std::string label =
            lvl == 1 ? name + " leaf blk " + std::to_string(b)
                     : name + " inner lvl " + std::to_string(lvl) +
                           " blk " + std::to_string(b);
        map.add(page, kPageBytes, std::move(label));
    }
}

std::vector<Tid>
BTree::lookupAll(TracedMemory &mem, Key key) const
{
    std::vector<Tid> out;
    Cursor c = seek(mem, key);
    Key k;
    Tid t;
    while (c.next(mem, k, t)) {
        if (k != key)
            break;
        out.push_back(t);
    }
    c.close(mem);
    return out;
}

} // namespace db
} // namespace dss
