/**
 * @file
 * Volcano-style query executor over left-deep plan trees, after Postgres95.
 *
 * Tuples flow one at a time between nodes. Scan nodes read *shared* tuples
 * (Data class) attribute-by-attribute while evaluating their predicates and
 * copy selected tuples into *private* output slots (Priv class); every node
 * above a scan works on private data — exactly the structure the paper
 * describes in Section 3. Sort/Group/Aggregate/HashJoin materialize private
 * temp tables in the per-process private heap.
 *
 * Each node also owns a private "work area" standing in for Postgres95's
 * per-tuple executor state (TupleTableSlots, ExprContexts, palloc arenas):
 * a few scattered words of it are read and written per tuple processed.
 * This is what gives private data its paper-observed profile — several
 * times more references than shared data, poor primary-cache locality,
 * good secondary-cache locality.
 */

#ifndef DSS_DB_EXEC_HH
#define DSS_DB_EXEC_HH

#include <array>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/btree.hh"
#include "db/catalog.hh"
#include "db/expr.hh"

namespace dss {
namespace db {

/** Everything a plan needs at run time. */
struct ExecContext
{
    TracedMemory &mem;
    Catalog &catalog;
    PrivateHeap &priv;
    Xid xid;

    /**
     * Postgres95 re-initializes an index scan's descriptor through the
     * lock manager on every rescan — the steady LockMgrLock traffic the
     * paper measures on Index queries. Clearing this (an ablation knob,
     * bench/ablation_lock_discipline) keeps relation locks held across
     * rescans instead.
     */
    bool relockOnRescan = true;
};

/** Logical operations of the paper's Table 1. */
enum class LogicalOp : std::uint8_t {
    SeqScanSelect,
    IndexScanSelect,
    NestedLoopJoin,
    MergeJoin,
    HashJoin,
    Sort,
    Group,
    Aggregate
};

std::string_view logicalOpName(LogicalOp op);

/**
 * Private scratch region standing in for a node's per-tuple executor state.
 * touch() performs @p k deterministic pseudo-random read-modify-writes.
 */
class WorkArea
{
  public:
    WorkArea() = default;

    void init(ExecContext &ctx, std::size_t bytes, std::uint32_t seed);
    void touch(ExecContext &ctx, unsigned k);

  private:
    sim::Addr base_ = 0;
    std::size_t words_ = 0;
    std::uint32_t state_ = 1;
    std::array<std::uint32_t, 32> hot_ = {}; ///< revisited allocations
};

/** One node of a physical plan tree. */
class ExecNode
{
  public:
    virtual ~ExecNode() = default;

    /** Output tuple layout. */
    virtual const Schema &schema() const = 0;

    /** Acquire locks, allocate slots, position at the first tuple. */
    virtual void open(ExecContext &ctx) = 0;

    /**
     * Produce the next tuple.
     * @param out Address of the node's (private) output tuple.
     * @return false when exhausted.
     */
    virtual bool next(ExecContext &ctx, sim::Addr &out) = 0;

    /** Release locks/pins. */
    virtual void close(ExecContext &ctx) = 0;

    /** Restart from the beginning (inner side of a nested-loop join). */
    virtual void rescan(ExecContext &ctx);

    /** Bind an equality key (parameterized inner index scan). */
    virtual void bindKey(std::int64_t key);

    virtual std::string name() const = 0;
    virtual std::vector<LogicalOp> logicalOps() const = 0;
    virtual std::vector<const ExecNode *> children() const { return {}; }
};

using NodePtr = std::unique_ptr<ExecNode>;

/** Projection source: a column of the left (outer) or right (inner) input. */
struct ProjItem
{
    bool fromRight = false;
    std::size_t idx = 0;
};

/**
 * Sequential Scan select (paper: "SS").
 *
 * An optional heap-block range [block_lo, block_hi) supports intra-query
 * parallelism (the paper's future work): partitioning one scan across
 * the processors instead of running one query per processor.
 */
class SeqScanNode final : public ExecNode
{
  public:
    SeqScanNode(const Relation &rel, ExprPtr pred, std::size_t block_lo = 0,
                std::size_t block_hi = ~std::size_t{0});

    const Schema &schema() const override { return rel_->schema; }
    void open(ExecContext &ctx) override;
    bool next(ExecContext &ctx, sim::Addr &out) override;
    void close(ExecContext &ctx) override;
    void rescan(ExecContext &ctx) override;
    std::string name() const override { return "SeqScan(" + rel_->name + ")"; }
    std::vector<LogicalOp> logicalOps() const override
    {
        return {LogicalOp::SeqScanSelect};
    }

  private:
    bool pinCurrent(ExecContext &ctx);

    const Relation *rel_;
    ExprPtr pred_;
    std::size_t blockLo_;
    std::size_t blockHi_;
    sim::Addr outSlot_ = 0;
    WorkArea work_;
    std::size_t blockIdx_ = 0;
    std::uint16_t slot_ = 0;
    std::uint16_t numSlots_ = 0;
    bool pinned_ = false;
    bool locked_ = false;
    sim::Addr pageAddr_ = 0;
};

/** Index Scan select (paper: "IS") over an inclusive key range. */
class IndexScanNode final : public ExecNode
{
  public:
    static constexpr std::int64_t kMinKey =
        std::numeric_limits<std::int64_t>::min();
    static constexpr std::int64_t kMaxKey =
        std::numeric_limits<std::int64_t>::max();

    IndexScanNode(const Relation &rel, const BTree &index,
                  std::int64_t lo_key, std::int64_t hi_key, ExprPtr residual);

    const Schema &schema() const override { return rel_->schema; }
    void open(ExecContext &ctx) override;
    bool next(ExecContext &ctx, sim::Addr &out) override;
    void close(ExecContext &ctx) override;
    void rescan(ExecContext &ctx) override;
    void bindKey(std::int64_t key) override;
    std::string name() const override
    {
        return "IdxScan(" + rel_->name + ")";
    }
    std::vector<LogicalOp> logicalOps() const override
    {
        return {LogicalOp::IndexScanSelect};
    }

  private:
    void acquireLocks(ExecContext &ctx);
    void releaseLocks(ExecContext &ctx);

    const Relation *rel_;
    const BTree *index_;
    std::int64_t lo_, hi_;
    ExprPtr residual_;
    sim::Addr outSlot_ = 0;
    WorkArea work_;
    BTree::Cursor cursor_;
    bool locked_ = false;
    bool exhausted_ = false;
};

/**
 * Nested Loop join (paper: "NL"). When @p outer_key_attr is set, the inner
 * child is an index scan that gets the outer key bound before each rescan
 * (Postgres95's nestloop-with-inner-indexscan, the Q3 pattern).
 */
class NestedLoopJoinNode final : public ExecNode
{
  public:
    static constexpr std::size_t kNoKey = ~std::size_t{0};

    NestedLoopJoinNode(NodePtr outer, NodePtr inner,
                       std::size_t outer_key_attr, ExprPtr extra_pred,
                       std::vector<ProjItem> proj);

    const Schema &schema() const override { return outSchema_; }
    void open(ExecContext &ctx) override;
    bool next(ExecContext &ctx, sim::Addr &out) override;
    void close(ExecContext &ctx) override;
    void rescan(ExecContext &ctx) override;
    std::string name() const override { return "NestLoopJoin"; }
    std::vector<LogicalOp> logicalOps() const override
    {
        return {LogicalOp::NestedLoopJoin};
    }
    std::vector<const ExecNode *> children() const override
    {
        return {outer_.get(), inner_.get()};
    }

  private:
    void project(ExecContext &ctx, sim::Addr outer_t, sim::Addr inner_t);

    NodePtr outer_;
    NodePtr inner_;
    std::size_t keyAttr_;
    ExprPtr extraPred_;
    std::vector<ProjItem> proj_;
    Schema outSchema_;
    sim::Addr outSlot_ = 0;
    WorkArea work_;
    sim::Addr outerTuple_ = 0;
    bool haveOuter_ = false;
};

/**
 * Nested-loop semi-join: EXISTS / NOT EXISTS subqueries (the paper's
 * "queries that involve nested queries" future work). For each outer
 * tuple the parameterized inner plan is rescanned; the outer tuple passes
 * when the inner produces at least one row (or none, when negated).
 * Output schema = the outer schema (no projection happens).
 *
 * Executing a nested query this way turns the outer's access pattern into
 * per-tuple index probes — it converts a Sequential-class query into an
 * Index-class one (bench/ext_nested_query measures exactly that).
 */
class SemiJoinNode final : public ExecNode
{
  public:
    SemiJoinNode(NodePtr outer, NodePtr inner, std::size_t outer_key_attr,
                 bool negated = false);

    const Schema &schema() const override { return outer_->schema(); }
    void open(ExecContext &ctx) override;
    bool next(ExecContext &ctx, sim::Addr &out) override;
    void close(ExecContext &ctx) override;
    void rescan(ExecContext &ctx) override;
    std::string name() const override
    {
        return negated_ ? "AntiSemiJoin" : "SemiJoin";
    }
    std::vector<LogicalOp> logicalOps() const override
    {
        return {LogicalOp::NestedLoopJoin};
    }
    std::vector<const ExecNode *> children() const override
    {
        return {outer_.get(), inner_.get()};
    }

  private:
    NodePtr outer_;
    NodePtr inner_;
    std::size_t keyAttr_;
    bool negated_;
    WorkArea work_;
};

/** Merge join (paper: "M") of two inputs sorted on their key attributes. */
class MergeJoinNode final : public ExecNode
{
  public:
    MergeJoinNode(NodePtr left, NodePtr right, std::size_t left_key,
                  std::size_t right_key, std::vector<ProjItem> proj);

    const Schema &schema() const override { return outSchema_; }
    void open(ExecContext &ctx) override;
    bool next(ExecContext &ctx, sim::Addr &out) override;
    void close(ExecContext &ctx) override;
    std::string name() const override { return "MergeJoin"; }
    std::vector<LogicalOp> logicalOps() const override
    {
        return {LogicalOp::MergeJoin};
    }
    std::vector<const ExecNode *> children() const override
    {
        return {left_.get(), right_.get()};
    }

  private:
    std::int64_t keyOf(ExecContext &ctx, sim::Addr t, const Schema &s,
                       std::size_t attr);
    bool advanceLeft(ExecContext &ctx);
    bool advanceRight(ExecContext &ctx);
    void project(ExecContext &ctx, sim::Addr left_t, sim::Addr right_t);

    NodePtr left_;
    NodePtr right_;
    std::size_t leftKey_, rightKey_;
    std::vector<ProjItem> proj_;
    Schema outSchema_;
    sim::Addr outSlot_ = 0;
    WorkArea work_;

    bool leftValid_ = false, rightValid_ = false;
    sim::Addr leftTuple_ = 0, rightTuple_ = 0;
    std::int64_t leftKeyVal_ = 0, rightKeyVal_ = 0;
    std::int64_t groupKey_ = 0;
    std::vector<sim::Addr> group_; ///< buffered right-side duplicates
    std::size_t groupPos_ = 0;
    bool inGroup_ = false;
};

/** Hash join (paper: "H"): build on the right child, probe with the left. */
class HashJoinNode final : public ExecNode
{
  public:
    HashJoinNode(NodePtr probe, NodePtr build, std::size_t probe_key,
                 std::size_t build_key, std::vector<ProjItem> proj);

    const Schema &schema() const override { return outSchema_; }
    void open(ExecContext &ctx) override;
    bool next(ExecContext &ctx, sim::Addr &out) override;
    void close(ExecContext &ctx) override;
    std::string name() const override { return "HashJoin"; }
    std::vector<LogicalOp> logicalOps() const override
    {
        return {LogicalOp::HashJoin};
    }
    std::vector<const ExecNode *> children() const override
    {
        return {probe_.get(), build_.get()};
    }

  private:
    void project(ExecContext &ctx, sim::Addr probe_t, sim::Addr build_t);

    NodePtr probe_;
    NodePtr build_;
    std::size_t probeKey_, buildKey_;
    std::vector<ProjItem> proj_;
    Schema outSchema_;
    sim::Addr outSlot_ = 0;
    WorkArea work_;
    std::unordered_multimap<std::int64_t, sim::Addr> table_;
    sim::Addr probeTuple_ = 0;
    bool haveProbe_ = false;
    std::pair<std::unordered_multimap<std::int64_t, sim::Addr>::iterator,
              std::unordered_multimap<std::int64_t, sim::Addr>::iterator>
        range_;
};

/** Sort (materializes a private temp table, as the paper notes). */
class SortNode final : public ExecNode
{
  public:
    SortNode(NodePtr child, std::vector<std::size_t> key_attrs,
             std::vector<bool> descending = {});

    const Schema &schema() const override { return child_->schema(); }
    void open(ExecContext &ctx) override;
    bool next(ExecContext &ctx, sim::Addr &out) override;
    void close(ExecContext &ctx) override;
    void rescan(ExecContext &ctx) override;
    std::string name() const override { return "Sort"; }
    std::vector<LogicalOp> logicalOps() const override
    {
        return {LogicalOp::Sort};
    }
    std::vector<const ExecNode *> children() const override
    {
        return {child_.get()};
    }

    std::size_t numRows() const { return rows_.size(); }

  private:
    NodePtr child_;
    std::vector<std::size_t> keys_;
    std::vector<bool> desc_;
    WorkArea work_;
    std::vector<sim::Addr> rows_; ///< private temp table
    std::vector<std::uint32_t> order_;
    std::size_t pos_ = 0;
};

/** Aggregate specification. */
struct AggSpec
{
    enum class Op { Sum, Count, Avg, Min, Max };
    Op op = Op::Sum;
    ExprPtr arg; ///< null for Count(*)
    std::string name = "agg";
};

/**
 * Group + Aggregate over input sorted on the group keys (the paper's plans
 * always sort first). Empty @p group_attrs = a single global group (plain
 * Aggregate); empty @p aggs = plain Group (one row per group).
 */
class AggregateNode final : public ExecNode
{
  public:
    AggregateNode(NodePtr child, std::vector<std::size_t> group_attrs,
                  std::vector<AggSpec> aggs);

    const Schema &schema() const override { return outSchema_; }
    void open(ExecContext &ctx) override;
    bool next(ExecContext &ctx, sim::Addr &out) override;
    void close(ExecContext &ctx) override;
    std::string name() const override
    {
        return groupAttrs_.empty() ? "Aggregate" : "GroupAggregate";
    }
    std::vector<LogicalOp> logicalOps() const override;
    std::vector<const ExecNode *> children() const override
    {
        return {child_.get()};
    }

  private:
    void initState(ExecContext &ctx);
    void accumulate(ExecContext &ctx, sim::Addr t);
    void emit(ExecContext &ctx, const std::vector<Datum> &keys);
    std::vector<Datum> groupKeysOf(ExecContext &ctx, sim::Addr t);

    NodePtr child_;
    std::vector<std::size_t> groupAttrs_;
    std::vector<AggSpec> aggs_;
    Schema outSchema_;
    sim::Addr outSlot_ = 0;
    sim::Addr state_ = 0; ///< running sums/counts (private, traced)
    WorkArea work_;
    bool done_ = false;
    bool havePending_ = false;
    sim::Addr pending_ = 0; ///< first tuple of the next group
    std::uint64_t rowsInGroup_ = 0;
};

/** Logical operations appearing anywhere in the plan (Table 1 rows). */
std::vector<LogicalOp> collectLogicalOps(const ExecNode &root);

/**
 * Open/drain/close a plan, materializing every output row to host datums
 * (the "send to the front-end" step reads each result attribute once).
 */
std::vector<std::vector<Datum>> runQuery(ExecContext &ctx, ExecNode &root);

} // namespace db
} // namespace dss

#endif // DSS_DB_EXEC_HH
