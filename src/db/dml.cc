#include "db/dml.hh"

#include <stdexcept>

#include "db/page.hh"

namespace dss {
namespace db {

namespace {

/** Executor machinery per modified row (cost model, see exec.cc). */
constexpr std::uint32_t kInsertBusy = 1500;
constexpr std::uint32_t kDeleteBusy = 600;

} // namespace

void
lockForWrite(ExecContext &ctx, RelId table)
{
    ctx.catalog.lockmgr().lockRelation(ctx.mem, ctx.xid, table,
                                       LockMode::Write);
}

void
unlockWrite(ExecContext &ctx, RelId table)
{
    ctx.catalog.lockmgr().unlockRelation(ctx.mem, ctx.xid, table,
                                         LockMode::Write);
}

Tid
heapInsert(ExecContext &ctx, RelId table, const std::vector<Datum> &values)
{
    Relation &r = ctx.catalog.relation(table);
    std::vector<std::uint8_t> img = encodeTuple(r.schema, values);
    ctx.mem.busy(kInsertBusy);

    BufferManager &bm = ctx.catalog.bufmgr();

    auto append_to = [&](BlockNo blk) -> int {
        sim::Addr page_addr = bm.pinPage(ctx.mem, table, blk);
        PageRef page(ctx.mem, page_addr);
        int slot = page.addTuple(img.data(), img.size());
        bm.unpinPage(ctx.mem, table, blk);
        return slot;
    };

    int slot = -1;
    BlockNo blk = -1;
    if (!r.blocks.empty()) {
        blk = r.blocks.back();
        slot = append_to(blk);
    }
    if (slot < 0) {
        // Extend the relation with a fresh buffer block.
        blk = static_cast<BlockNo>(r.blocks.size());
        sim::Addr page_addr =
            bm.allocBlock(ctx.mem, table, blk, sim::DataClass::Data);
        PageRef(ctx.mem, page_addr).init();
        r.blocks.push_back(blk);
        r.currentBlock = blk;
        r.currentPage = page_addr;
        slot = append_to(blk);
        if (slot < 0)
            throw std::runtime_error("heapInsert: tuple larger than page");
    }

    Tid tid{blk, static_cast<std::uint16_t>(slot)};
    ++r.numTuples;

    // Maintain every index of the table (traced B-tree inserts).
    for (auto [attr, tree] : ctx.catalog.indicesOf(table))
        tree->insert(ctx.mem, datumToKey(values.at(attr)), tid);
    return tid;
}

bool
heapDelete(ExecContext &ctx, RelId table, Tid tid)
{
    ctx.mem.busy(kDeleteBusy);
    BufferManager &bm = ctx.catalog.bufmgr();
    sim::Addr page_addr = bm.pinPage(ctx.mem, table, tid.block);
    PageRef page(ctx.mem, page_addr);
    bool live = page.slotLive(tid.slot);
    if (live) {
        page.killSlot(tid.slot);
        Relation &r = ctx.catalog.relation(table);
        if (r.numTuples > 0)
            --r.numTuples;
    }
    bm.unpinPage(ctx.mem, table, tid.block);
    return live;
}

std::uint64_t
countLiveTuples(ExecContext &ctx, RelId table)
{
    Relation &r = ctx.catalog.relation(table);
    BufferManager &bm = ctx.catalog.bufmgr();
    std::uint64_t n = 0;
    for (BlockNo blk : r.blocks) {
        sim::Addr page_addr = bm.pinPage(ctx.mem, table, blk);
        PageRef page(ctx.mem, page_addr);
        std::uint16_t slots = page.numSlots();
        for (std::uint16_t s = 0; s < slots; ++s)
            n += page.slotLive(s) ? 1 : 0;
        bm.unpinPage(ctx.mem, table, blk);
    }
    return n;
}

} // namespace db
} // namespace dss
