/**
 * @file
 * Relational schemas and tuple access.
 *
 * Tuples are fixed-length records laid out in pages; attributes are read
 * and written through TracedMemory so each attribute touch appears in the
 * trace with the right DataClass (Data for heap pages, Priv for private
 * copies). Values are materialized into Datum for host-side computation.
 */

#ifndef DSS_DB_SCHEMA_HH
#define DSS_DB_SCHEMA_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "db/mem.hh"

namespace dss {
namespace db {

/** Attribute storage type. Date is days since 1992-01-01 (int32). */
enum class AttrType : std::uint8_t { Int32, Int64, Double, Date, Char };

/** One column of a schema. */
struct Attribute
{
    std::string name;
    AttrType type = AttrType::Int32;
    std::uint16_t len = 4;    ///< bytes (Char: declared width)
    std::uint16_t offset = 0; ///< byte offset within the tuple
};

/** A fixed-length tuple layout. */
class Schema
{
  public:
    Schema() = default;

    /** Append a column; @p len is required for Char. */
    Schema &add(std::string name, AttrType type, std::uint16_t len = 0);

    std::size_t numAttrs() const { return attrs_.size(); }
    const Attribute &attr(std::size_t i) const { return attrs_.at(i); }

    /** Index of @p name; throws if absent. */
    std::size_t indexOf(const std::string &name) const;

    /** Tuple length in bytes (8-byte aligned). */
    std::size_t tupleLen() const { return tupleLen_; }

    /**
     * Layout for a join result: the columns of @p left then @p right,
     * names prefixed to stay unique.
     */
    static Schema concat(const Schema &left, const Schema &right);

  private:
    std::vector<Attribute> attrs_;
    std::size_t rawLen_ = 0;   ///< packed length before final padding
    std::size_t tupleLen_ = 0; ///< rawLen_ rounded up to 8
};

/** A runtime value: integer (Int32/Int64/Date), real, or string. */
using Datum = std::variant<std::int64_t, double, std::string>;

/** Three-way comparison of same-kind datums. */
int compareDatum(const Datum &a, const Datum &b);

std::int64_t datumInt(const Datum &d);
double datumReal(const Datum &d);
const std::string &datumStr(const Datum &d);

/** Read attribute @p idx of the tuple at @p base (traced). */
Datum readAttr(TracedMemory &mem, sim::Addr base, const Schema &schema,
               std::size_t idx);

/** Write attribute @p idx of the tuple at @p base (traced). */
void writeAttr(TracedMemory &mem, sim::Addr base, const Schema &schema,
               std::size_t idx, const Datum &value);

/** Host-side tuple image from a row of datums (bulk loading). */
std::vector<std::uint8_t> encodeTuple(const Schema &schema,
                                      const std::vector<Datum> &values);

/** Sort key encoding of a datum into a signed 64-bit key. Integers and
 * dates map directly; doubles are scaled by 100 (money); strings use their
 * first 8 bytes, big-endian, preserving lexicographic order. */
std::int64_t datumToKey(const Datum &d);

} // namespace db
} // namespace dss

#endif // DSS_DB_SCHEMA_HH
