/**
 * @file
 * Catalog: relations, their heap blocks, and their indices.
 *
 * The catalog itself is host-side C++ state. Postgres95 keeps the system
 * catalog in per-process private software caches that essentially always
 * hit (paper Figure 4), so catalog lookups are deliberately untraced —
 * consistent with the paper's accounting.
 */

#ifndef DSS_DB_CATALOG_HH
#define DSS_DB_CATALOG_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/btree.hh"
#include "db/bufmgr.hh"
#include "db/common.hh"
#include "db/lockmgr.hh"
#include "db/schema.hh"

namespace dss {
namespace db {

/** One table: schema plus its buffer-resident heap blocks. */
struct Relation
{
    RelId id = 0;
    std::string name;
    Schema schema;
    std::vector<BlockNo> blocks; ///< heap blocks, in insertion order
    std::uint64_t numTuples = 0;

    // Bulk-load state.
    BlockNo currentBlock = -1;
    sim::Addr currentPage = 0;
};

class Catalog
{
  public:
    Catalog(BufferManager &bufmgr, LockManager &lockmgr)
        : bufmgr_(bufmgr), lockmgr_(lockmgr)
    {}

    /** Create an empty table. */
    RelId createTable(TracedMemory &setup, std::string name, Schema schema);

    /** Append one row (bulk load; setup time). */
    Tid insert(TracedMemory &setup, RelId rel,
               const std::vector<Datum> &values);

    /**
     * Build a B-tree on attribute @p attr_idx of @p table (setup time).
     * Non-unique keys are allowed; keys come from datumToKey().
     * @return the index's relation id.
     */
    RelId createIndex(TracedMemory &setup, std::string name, RelId table,
                      std::size_t attr_idx);

    Relation &relation(RelId id);
    const Relation &relation(RelId id) const;
    RelId relIdOf(const std::string &name) const;

    /** Name of table or index @p id; "rel<id>" if unregistered. */
    std::string nameOf(RelId id) const;

    /**
     * Every lockable relation id — tables and indices — in ascending id
     * order. The stream workload pre-warms the lock manager's hash with
     * these so a query instance's probe sequence is independent of
     * whether an earlier instance touched the relation first.
     */
    std::vector<RelId> allRelIds() const;

    /**
     * Register every catalog-managed structure with the memory profiler's
     * symbol map: heap blocks and buffer metadata via the buffer manager,
     * the lock tables, and every B-tree page with its level.
     */
    void describeRegions(obs::RegionMap &map) const;

    /** Index on (@p table, @p attr_idx), or nullptr. */
    const BTree *findIndex(RelId table, std::size_t attr_idx) const;

    const BTree &index(RelId index_rel) const;

    /** Mutable index access (runtime inserts by update queries). */
    BTree &indexMut(RelId index_rel);

    /** All indices over @p table, with the attribute each one keys on
     * (update queries maintain them on insert). */
    std::vector<std::pair<std::size_t, BTree *>> indicesOf(RelId table);

    BufferManager &bufmgr() { return bufmgr_; }
    LockManager &lockmgr() { return lockmgr_; }

    std::size_t numTables() const { return tables_.size(); }
    std::size_t numIndices() const { return indices_.size(); }

  private:
    BufferManager &bufmgr_;
    LockManager &lockmgr_;
    RelId nextRel_ = 1;
    std::map<RelId, Relation> tables_;
    std::map<RelId, std::unique_ptr<BTree>> indices_;
    std::map<std::pair<RelId, std::size_t>, RelId> indexByAttr_;
    std::map<RelId, std::vector<std::pair<std::size_t, RelId>>>
        indicesByTable_; ///< table -> [(attr, index rel)]
    std::map<std::string, RelId> byName_;
};

} // namespace db
} // namespace dss

#endif // DSS_DB_CATALOG_HH
