/**
 * @file
 * Explicit-state BFS over the protocol model.
 *
 * Classic Murphi-style exploration: start from the cold state, expand
 * every enabled event of every visited state, deduplicate successors by
 * their symmetry-reduced canonical encoding, and stop at the first
 * invariant violation — which, because the frontier is breadth-first, is
 * reached by a shortest event path. The path is rebuilt from the parent
 * links and re-concretized (canonicalization permutes processors per
 * state; the replay walks the permutations back so the whole
 * counterexample lives in one concrete processor frame and can be
 * re-applied, or emitted as a TraceStream, verbatim).
 *
 * Determinism: states are expanded in discovery order, events enumerate
 * in a fixed order, and the visited set is only ever queried by key —
 * never iterated — so repeated runs visit identical states in identical
 * order and produce bit-identical reports.
 */

#ifndef DSS_VERIFY_VERIFIER_HH
#define DSS_VERIFY_VERIFIER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "verify/model.hh"

namespace dss {
namespace verify {

struct VerifyOptions
{
    /** Stop expanding states deeper than this (0 = unbounded). A depth
     * cut makes the run non-exhaustive; the result says so. */
    unsigned maxDepth = 0;
    /** Abort after visiting this many states (0 = unbounded). */
    std::uint64_t maxStates = 0;
};

/** A shortest violating run, in one concrete processor frame. */
struct Counterexample
{
    std::vector<Event> events;
    obs::Json detail; ///< invariant-checker report of the final state
};

struct VerifyResult
{
    std::uint64_t states = 0;      ///< distinct canonical states visited
    std::uint64_t transitions = 0; ///< events applied
    unsigned depth = 0;            ///< deepest layer reached
    std::uint64_t violations = 0;  ///< violation count of the bad state
    bool exhausted = false; ///< true iff the full space was covered
    Counterexample cex;     ///< empty when violations == 0

    obs::Json toJson() const;
};

class ProtocolVerifier
{
  public:
    ProtocolVerifier(ProtocolModel &model, const VerifyOptions &opts)
        : model_(model), opts_(opts)
    {
    }

    /** Run the search to exhaustion, a violation, or a configured
     * bound — whichever comes first. */
    VerifyResult run();

  private:
    ProtocolModel &model_;
    VerifyOptions opts_;
};

} // namespace verify
} // namespace dss

#endif // DSS_VERIFY_VERIFIER_HH
