#include "verify/verifier.hh"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <utility>

namespace dss {
namespace verify {

obs::Json
VerifyResult::toJson() const
{
    obs::Json j = obs::Json::object();
    j["states"] = states;
    j["transitions"] = transitions;
    j["depth"] = depth;
    j["violations"] = violations;
    j["exhausted"] = exhausted;
    if (!cex.events.empty()) {
        obs::Json evs = obs::Json::array();
        for (const Event &e : cex.events)
            evs.push(eventName(e));
        obs::Json c = obs::Json::object();
        c["events"] = std::move(evs);
        c["detail"] = cex.detail;
        j["counterexample"] = std::move(c);
    }
    return j;
}

namespace {

/**
 * BFS bookkeeping: one slot per discovered canonical state. `via` is the
 * inbound event expressed in the *parent's canonical frame* (the frame
 * decodeState(parent key) lives in).
 */
struct Space
{
    std::unordered_map<std::string, std::uint32_t> ids; // key -> slot
    std::vector<const std::string *> keys; // slot -> key (stable nodes)
    std::vector<std::uint32_t> parent;
    std::vector<Event> via;
    std::vector<unsigned> depth;

    /** Intern @p bytes; @return (slot, freshly inserted). */
    std::pair<std::uint32_t, bool> intern(std::string &&bytes)
    {
        auto [it, fresh] = ids.emplace(
            std::move(bytes), static_cast<std::uint32_t>(keys.size()));
        if (fresh) {
            keys.push_back(&it->first);
            parent.push_back(0);
            via.push_back({});
            depth.push_back(0);
        }
        return {it->second, fresh};
    }
};

std::vector<sim::ProcId>
invertPerm(const std::vector<sim::ProcId> &perm)
{
    std::vector<sim::ProcId> inv(perm.size());
    for (sim::ProcId p = 0; p < perm.size(); ++p)
        inv[perm[p]] = p;
    return inv;
}

/**
 * Rebuild the canonical-frame event path ending in (node @p at, final
 * event @p last), then replay it from the cold state in one concrete
 * frame: each stored event names processors in its source state's
 * canonical frame, so the concrete event is obtained through the inverse
 * of the running state's canonicalization permutation, which is then
 * refreshed from the concrete successor. Invariants are
 * permutation-invariant, so the concrete replay reproduces the violation
 * on its final step — asserted, and its checker report (matching the
 * concrete processor names) is the one published.
 */
Counterexample
concretize(ProtocolModel &model, const Space &space, std::uint32_t at,
           const Event &last, const obs::Json &canonical_detail)
{
    std::vector<Event> path;
    for (std::uint32_t n = at; n != 0; n = space.parent[n])
        path.push_back(space.via[n]);
    std::reverse(path.begin(), path.end());
    path.push_back(last);

    const Geometry &g = model.geom();
    Counterexample cex;
    cex.detail = canonical_detail;
    AbstractState cur = model.initial();
    std::vector<sim::ProcId> sigma = canonicalize(cur, g).perm;
    for (std::size_t i = 0; i < path.size(); ++i) {
        Event ce = path[i];
        ce.proc = invertPerm(sigma)[path[i].proc];
        cex.events.push_back(ce);
        ProtocolModel::StepResult step = model.apply(cur, ce);
        if (i + 1 == path.size()) {
            assert(step.violations != 0 &&
                   "concrete replay must reproduce the violation");
            if (step.violations != 0)
                cex.detail = step.detail;
        }
        cur = std::move(step.next);
        sigma = canonicalize(cur, g).perm;
    }
    return cex;
}

} // namespace

VerifyResult
ProtocolVerifier::run()
{
    const Geometry &g = model_.geom();
    VerifyResult res;
    Space space;
    space.intern(canonicalize(model_.initial(), g).bytes);

    bool truncated = false;
    std::vector<Event> evs;
    for (std::uint32_t at = 0; at < space.keys.size(); ++at) {
        if (opts_.maxStates != 0 && at >= opts_.maxStates) {
            truncated = true;
            break;
        }
        if (opts_.maxDepth != 0 && space.depth[at] >= opts_.maxDepth) {
            truncated = true;
            continue; // BFS layers: every later slot is as deep or deeper
        }
        const AbstractState s = decodeState(*space.keys[at], g);
        model_.enumerate(s, evs);
        for (const Event &ev : evs) {
            ProtocolModel::StepResult step = model_.apply(s, ev);
            ++res.transitions;
            if (step.violations != 0) {
                res.states = space.keys.size();
                res.violations = step.violations;
                res.depth = space.depth[at] + 1;
                res.cex = concretize(model_, space, at, ev, step.detail);
                return res;
            }
            Canonical c = canonicalize(step.next, g);
            auto [id, fresh] = space.intern(std::move(c.bytes));
            if (fresh) {
                space.parent[id] = at;
                space.via[id] = ev;
                space.depth[id] = space.depth[at] + 1;
                res.depth = std::max(res.depth, space.depth[id]);
            }
        }
    }
    res.states = space.keys.size();
    res.exhausted = !truncated;
    return res;
}

} // namespace verify
} // namespace dss
