/**
 * @file
 * Protocol model for the explicit-state coherence checker.
 *
 * The simulator's dynamic checks (50-seed fuzzing under sim/check.hh)
 * *sample* the protocol's state space; this subsystem *covers* it, for a
 * small bounded configuration: N processors and M shared coherent lines
 * plus one metalock word, composed over the real Cache (MSI line states
 * with a write-through L1 on top), WriteBuffer, Directory
 * (Uncached/Shared/Dirty with sharer vectors and 3-hop forwarding) and
 * the lock-continuation machinery.
 *
 * The model does NOT reimplement the protocol: every transition is
 * driven through the real sim:: pipelines via Machine's model-stepping
 * hooks. A transition is (abstract state) -> load into a scratch Machine
 * -> one synthesized event through the real readAccessT / writeTransactionT
 * / rmwAccessT / faultEvictT / doLockAcq / doLockRel code -> extract the
 * abstract successor. Events are load / store / evict / writeback-drain /
 * lock-acquire / lock-release; no workload trace is involved.
 *
 * What the abstract state keeps: per-line directory entry (state, owner,
 * sharer vector), per-processor per-line coherent MSI state and
 * upper-level subline presence, per-processor write-buffer FIFO contents
 * (as line identities), the metalock table (holder + ordered waiter
 * queue) and each processor's lock continuation. What it deliberately
 * omits — with the soundness argument for each in DESIGN.md §18 —
 * clocks, LRU stamps, controller occupancy, miss-classification history
 * and statistics: none of them feed back into protocol control flow for
 * the model's conflict-free line placement (asserted at construction).
 *
 * Mutation mode injects one of four known protocol bugs at the
 * transition seam (dropped invalidation ack, skipped owner-dirty
 * re-assert, stale directory sharer bit, write-buffer reorder) so the
 * checker can prove it would catch each — the soundness test for the
 * checker itself.
 */

#ifndef DSS_VERIFY_MODEL_HH
#define DSS_VERIFY_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/hierarchy.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace dss {
namespace verify {

/** Kind of synthesized protocol event. */
enum class EvKind : std::uint8_t {
    Load,    ///< data load of one L1 subline
    Store,   ///< data store of one L1 subline (write buffer + coherence)
    Evict,   ///< force-evict a resident coherent line (capacity pressure)
    WbDrain, ///< retire the oldest write-buffer entry
    LockAcq, ///< one step of a two-phase test&test&set acquire
    LockRel, ///< release the metalock (store + hand-off)
};

std::string_view evKindName(EvKind k);

/** One synthesized transition of the composed state machine. */
struct Event
{
    EvKind kind = EvKind::Load;
    sim::ProcId proc = 0;
    std::uint8_t line = 0;    ///< tracked-line index (lock line is last)
    std::uint8_t subline = 0; ///< L1-granularity subline for Load/Store

    bool operator==(const Event &o) const
    {
        return kind == o.kind && proc == o.proc && line == o.line &&
               subline == o.subline;
    }
};

/** Compact printable form: "store(p1,l0.s1)", "acq(p2)", ... */
std::string eventName(const Event &e);

/**
 * A processor's lock continuation. Blocked/MidAcq mirror the engine's
 * ProcRun flags; Granted and Holding are model bookkeeping for the
 * hand-off window (the lock table already names the processor as holder,
 * but it must still re-execute its acquire before entering the critical
 * section — exactly the re-execution a woken spinner performs).
 */
enum class Cont : std::uint8_t {
    Idle,    ///< no lock interaction in flight
    MidAcq,  ///< test&set transaction done; the grab is the next step
    Blocked, ///< spinning in a waiter queue
    Granted, ///< woken by a release; must re-execute the acquire
    Holding, ///< inside the critical section
};

/** Abstract (timing-free) state of one tracked coherent line. */
struct LineState
{
    std::uint8_t dir = 0;      ///< 0 Uncached, 1 Shared, 2 Dirty
    sim::ProcId owner = 0;     ///< meaningful only when dir == 2
    std::uint32_t sharers = 0; ///< directory sharer vector
    /** Per processor: coherent-level MSI state (0 I, 1 S, 2 M). */
    std::vector<std::uint8_t> coh;
    /** Per processor x upper level: subline presence bitmask. */
    std::vector<std::array<std::uint8_t, sim::kMaxCacheLevels - 1>> upper;
};

/** Full abstract state of the composed machine. */
struct AbstractState
{
    std::vector<LineState> lines; ///< tracked lines; lock line last
    std::vector<Cont> cont;       ///< per processor
    /** Per processor: write-buffer FIFO, oldest first; each entry is
     * line_index * l1_sublines + subline. */
    std::vector<std::vector<std::uint8_t>> wb;
    bool lockHeld = false;
    sim::ProcId lockHolder = 0;
    std::vector<sim::ProcId> waiters; ///< queue order preserved
};

/**
 * Tracked-address layout plus the derived hierarchy shape. Line i sits
 * at i * (pageBytes + cohLineBytes): distinct homes and — asserted at
 * model construction — distinct sets at every cache level, so tracked
 * lines never evict each other organically and LRU state cannot affect
 * any transition (the key premise for dropping it from the state).
 */
struct Geometry
{
    unsigned nprocs = 0;
    unsigned nlines = 0;    ///< dataLines + 1 (the lock line)
    unsigned dataLines = 0;
    unsigned nlev = 0;
    unsigned l1Sublines = 1; ///< cohLineBytes / l1LineBytes
    std::array<unsigned, sim::kMaxCacheLevels - 1> sublinesAt{};
    std::size_t cohLineBytes = 0;
    std::size_t l1LineBytes = 0;
    std::vector<sim::Addr> lineAddr; ///< coherent line addresses
    sim::Addr lockWord = 0;          ///< == lineAddr.back()
};

/**
 * Canonical form of an abstract state under processor permutation.
 * Protocol transitions are home-node independent (homes feed only
 * latency and statistics), so the full symmetric group on processors is
 * a sound reduction: the canonical encoding is the lexicographically
 * smallest over all N! relabelings. perm[p] is the canonical index of
 * original processor p.
 */
struct Canonical
{
    std::string bytes;
    std::vector<sim::ProcId> perm;
};

/** Encode @p s under processor relabeling @p perm into @p out. */
void encodeState(const AbstractState &s, const Geometry &g,
                 const std::vector<sim::ProcId> &perm, std::string &out);

/** Lexicographically minimal encoding over all processor relabelings. */
Canonical canonicalize(const AbstractState &s, const Geometry &g);

/** Inverse of encodeState with the identity relabeling. */
AbstractState decodeState(const std::string &bytes, const Geometry &g);

/** Known protocol mutations for the checker-soundness mode. */
enum class Mutant : std::uint8_t {
    None = 0,
    DropInvalAck,   ///< a store's invalidation ack is lost: stale copy
    SkipOwnerDirty, ///< store completes without re-asserting dirty
    StaleSharerBit, ///< eviction leaves the sharer bit set
    WbReorder,      ///< write buffer retires out of FIFO order
};
constexpr unsigned kNumMutants = 4;

std::string_view mutantName(Mutant m);

/**
 * The transition function: owns a scratch Machine built from a shrunk
 * copy of the preset hierarchy (line sizes, associativities, level count
 * and latencies preserved; capacities cut to a handful of sets) and
 * drives the real pipelines one synthesized event at a time.
 */
class ProtocolModel
{
  public:
    struct Options
    {
        unsigned procs = 2;     ///< model processors (symmetry-reduced)
        unsigned lines = 2;     ///< tracked shared data lines
        unsigned wbEntries = 1; ///< model write-buffer capacity
        /** Target every L1 subline of each line (true exercises the
         * write-through L1's subline granularity and multiplies the
         * write-buffer alphabet; false targets subline 0 only, the
         * default — the L1/coherent subline seam is still crossed on
         * every access, the space just stays exhaustible). */
        bool allSublines = false;
        Mutant mutant = Mutant::None;
    };

    /** Throws sim::SimError when the shrunk geometry cannot guarantee
     * conflict-free tracked lines (too many lines for the sets). */
    ProtocolModel(const sim::MachineConfig &base, const Options &opt);

    const Geometry &geom() const { return g_; }
    const sim::MachineConfig &config() const { return cfg_; }
    Mutant mutant() const { return opt_.mutant; }

    /** The empty cold state (caches, directory, buffers, lock all
     * clear) — the BFS root. */
    AbstractState initial() const;

    /** All events enabled in @p s, in a fixed deterministic order. */
    void enumerate(const AbstractState &s, std::vector<Event> &out) const;

    struct StepResult
    {
        AbstractState next;
        std::uint64_t violations = 0; ///< checker sweep of the successor
        obs::Json detail;             ///< checker toJson() when violating
    };

    /** Apply one transition: load @p s, drive @p ev through the real
     * pipelines, inject the configured mutation, sweep the invariants,
     * extract the successor. */
    StepResult apply(const AbstractState &s, const Event &ev);

    /**
     * Emit one TraceStream per processor replaying @p events (a
     * counterexample path in a single concrete frame) from the cold
     * initial state. Busy padding serializes the events under min-clock
     * replay; multi-step lock acquires collapse to one LockAcq entry.
     * Evict and WbDrain events have no trace-level expression (they are
     * fault/timing effects) and contribute padding only — the JSON
     * counterexample always lists the exact event sequence.
     */
    std::vector<sim::TraceStream> traces(const std::vector<Event> &events);

    /** Shrink @p base to the model machine: same hierarchy shape and
     * latencies, tiny capacities, @p procs processors, @p wb_entries
     * write-buffer slots, prefetch off. */
    static sim::MachineConfig modelConfig(const sim::MachineConfig &base,
                                          unsigned procs,
                                          unsigned wb_entries);

  private:
    void load(const AbstractState &s);
    void stepEvent(const Event &ev);
    void applyMutant(const AbstractState &pre, const Event &ev);
    AbstractState extract(const AbstractState &pre, const Event &ev) const;
    sim::Addr eventAddr(const Event &ev) const;
    sim::Addr wbLineOf(std::uint8_t enc) const;

    Options opt_;
    sim::MachineConfig cfg_;
    Geometry g_;
    sim::Machine m_;
};

} // namespace verify
} // namespace dss

#endif // DSS_VERIFY_MODEL_HH
