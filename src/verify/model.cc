#include "verify/model.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "sim/check.hh"
#include "sim/error.hh"

namespace dss {
namespace verify {

namespace {

/** Sets per level of the shrunk model machine: enough to give every
 * tracked line (and its sublines) a private set in the paper's
 * direct-mapped L1, small enough that a full state reload costs
 * microseconds. */
constexpr std::size_t kModelSets = 8;

/** Retire horizon for write-buffer entries reconstructed by load():
 * far beyond any latency a single event can accumulate, so pending
 * stores only leave the buffer through explicit WbDrain events (or a
 * real overflow pop). */
constexpr sim::Cycles kModelDrainNever = sim::Cycles{1} << 40;

/** Slot pitch of counterexample traces: each event of the path gets its
 * own window, far wider than any single-event stall (< ~500 cycles), so
 * min-clock replay issues the events in path order. */
constexpr sim::Cycles kCexSlotCycles = 1u << 20;

constexpr std::uint32_t
bit(sim::ProcId p)
{
    return std::uint32_t{1} << p;
}

} // namespace

std::string_view
evKindName(EvKind k)
{
    switch (k) {
      case EvKind::Load: return "load";
      case EvKind::Store: return "store";
      case EvKind::Evict: return "evict";
      case EvKind::WbDrain: return "drain";
      case EvKind::LockAcq: return "acq";
      case EvKind::LockRel: return "rel";
    }
    return "?";
}

std::string
eventName(const Event &e)
{
    std::ostringstream os;
    os << evKindName(e.kind) << "(p" << unsigned{e.proc};
    switch (e.kind) {
      case EvKind::Load:
      case EvKind::Store:
        os << ",l" << unsigned{e.line} << ".s" << unsigned{e.subline};
        break;
      case EvKind::Evict:
        os << ",l" << unsigned{e.line};
        break;
      case EvKind::WbDrain:
      case EvKind::LockAcq:
      case EvKind::LockRel:
        break;
    }
    os << ")";
    return os.str();
}

std::string_view
mutantName(Mutant m)
{
    switch (m) {
      case Mutant::None: return "none";
      case Mutant::DropInvalAck: return "drop-inval-ack";
      case Mutant::SkipOwnerDirty: return "skip-owner-dirty";
      case Mutant::StaleSharerBit: return "stale-sharer-bit";
      case Mutant::WbReorder: return "wb-reorder";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Encoding. Fixed layout given the geometry; one byte per field keeps
// decode trivial and states ~40 bytes. Processor-indexed data is written
// in canonical slot order: slot q holds original processor inv[q]'s
// data, processor *values* map through perm.
// ---------------------------------------------------------------------

void
encodeState(const AbstractState &s, const Geometry &g,
            const std::vector<sim::ProcId> &perm, std::string &out)
{
    out.clear();
    std::array<sim::ProcId, 8> inv{};
    for (sim::ProcId p = 0; p < g.nprocs; ++p)
        inv[perm[p]] = p;

    for (unsigned i = 0; i < g.nlines; ++i) {
        const LineState &ls = s.lines[i];
        const bool dirty = ls.dir == 2;
        out.push_back(static_cast<char>(
            (ls.dir << 4) | (dirty ? perm[ls.owner] : 0)));
        std::uint8_t sh = 0;
        for (sim::ProcId p = 0; p < g.nprocs; ++p)
            if (ls.sharers & bit(p))
                sh |= static_cast<std::uint8_t>(bit(perm[p]));
        out.push_back(static_cast<char>(sh));
        for (unsigned q = 0; q < g.nprocs; ++q) {
            const sim::ProcId p = inv[q];
            out.push_back(static_cast<char>(ls.coh[p]));
            for (unsigned u = 0; u + 1 < g.nlev; ++u)
                out.push_back(static_cast<char>(ls.upper[p][u]));
        }
    }
    for (unsigned q = 0; q < g.nprocs; ++q)
        out.push_back(static_cast<char>(s.cont[inv[q]]));
    for (unsigned q = 0; q < g.nprocs; ++q) {
        const std::vector<std::uint8_t> &fifo = s.wb[inv[q]];
        out.push_back(static_cast<char>(fifo.size()));
        for (std::uint8_t enc : fifo)
            out.push_back(static_cast<char>(enc));
    }
    out.push_back(static_cast<char>(
        s.lockHeld ? 0x10 | perm[s.lockHolder] : 0));
    out.push_back(static_cast<char>(s.waiters.size()));
    for (sim::ProcId w : s.waiters)
        out.push_back(static_cast<char>(perm[w]));
}

Canonical
canonicalize(const AbstractState &s, const Geometry &g)
{
    std::vector<sim::ProcId> perm(g.nprocs);
    for (sim::ProcId p = 0; p < g.nprocs; ++p)
        perm[p] = p;
    Canonical best;
    encodeState(s, g, perm, best.bytes);
    best.perm = perm;
    std::string cand;
    while (std::next_permutation(perm.begin(), perm.end())) {
        encodeState(s, g, perm, cand);
        if (cand < best.bytes) {
            best.bytes = cand;
            best.perm = perm;
        }
    }
    return best;
}

AbstractState
decodeState(const std::string &bytes, const Geometry &g)
{
    AbstractState s;
    std::size_t at = 0;
    auto next = [&]() -> std::uint8_t {
        assert(at < bytes.size());
        return static_cast<std::uint8_t>(bytes[at++]);
    };

    s.lines.resize(g.nlines);
    for (unsigned i = 0; i < g.nlines; ++i) {
        LineState &ls = s.lines[i];
        const std::uint8_t head = next();
        ls.dir = head >> 4;
        ls.owner = head & 0x0f;
        ls.sharers = next();
        ls.coh.resize(g.nprocs);
        ls.upper.resize(g.nprocs);
        for (unsigned p = 0; p < g.nprocs; ++p) {
            ls.coh[p] = next();
            ls.upper[p] = {};
            for (unsigned u = 0; u + 1 < g.nlev; ++u)
                ls.upper[p][u] = next();
        }
    }
    s.cont.resize(g.nprocs);
    for (unsigned p = 0; p < g.nprocs; ++p)
        s.cont[p] = static_cast<Cont>(next());
    s.wb.resize(g.nprocs);
    for (unsigned p = 0; p < g.nprocs; ++p) {
        const std::uint8_t len = next();
        s.wb[p].resize(len);
        for (std::uint8_t &e : s.wb[p])
            e = next();
    }
    const std::uint8_t lock = next();
    s.lockHeld = (lock & 0x10) != 0;
    s.lockHolder = lock & 0x0f;
    const std::uint8_t nw = next();
    s.waiters.resize(nw);
    for (sim::ProcId &w : s.waiters)
        w = next();
    assert(at == bytes.size());
    return s;
}

// ---------------------------------------------------------------------
// ProtocolModel
// ---------------------------------------------------------------------

sim::MachineConfig
ProtocolModel::modelConfig(const sim::MachineConfig &base, unsigned procs,
                           unsigned wb_entries)
{
    sim::MachineConfig c = base;
    c.nprocs = procs;
    c.prefetchData = false;
    c.writeBufferEntries = wb_entries;
    // Same shape (line sizes, associativities, level count, latencies),
    // tiny capacities: kModelSets sets per level, kept monotone for the
    // inclusion-capacity rule.
    std::size_t prev = 0;
    for (sim::LevelConfig &lvl : c.levels) {
        lvl.sizeBytes =
            std::max(lvl.lineBytes * lvl.assoc * kModelSets, prev);
        prev = lvl.sizeBytes;
    }
    c.validate();
    return c;
}

ProtocolModel::ProtocolModel(const sim::MachineConfig &base,
                             const Options &opt)
    : opt_(opt),
      cfg_(modelConfig(base, opt.procs, opt.wbEntries)),
      m_(cfg_)
{
    if (opt_.procs < 2 || opt_.procs > 6)
        throw sim::SimError("verify: model processors must be in [2, 6] "
                            "(canonicalization enumerates N! relabelings)",
                            obs::Json::object());
    if (opt_.lines < 1 || opt_.lines > 6)
        throw sim::SimError("verify: tracked data lines must be in [1, 6]",
                            obs::Json::object());
    if (opt_.wbEntries < 1 || opt_.wbEntries > 7)
        throw sim::SimError("verify: model write buffer must be in [1, 7]",
                            obs::Json::object());

    Geometry &g = g_;
    g.nprocs = cfg_.nprocs;
    g.dataLines = opt_.lines;
    g.nlines = opt_.lines + 1;
    g.nlev = static_cast<unsigned>(cfg_.numLevels());
    g.cohLineBytes = cfg_.coherent().lineBytes;
    g.l1LineBytes = cfg_.l1().lineBytes;
    g.l1Sublines = static_cast<unsigned>(g.cohLineBytes / g.l1LineBytes);
    for (unsigned u = 0; u + 1 < g.nlev; ++u)
        g.sublinesAt[u] = static_cast<unsigned>(
            g.cohLineBytes / cfg_.levels[u].lineBytes);
    if (g.l1Sublines > 8)
        throw sim::SimError("verify: more than 8 L1 sublines per "
                            "coherent line (mask encoding limit)",
                            obs::Json::object());

    // One line per page-plus-a-line: consecutive homes under the default
    // interleave policy and, decisive for soundness, distinct sets at
    // every level (checked below).
    const sim::Addr stride = cfg_.pageBytes + g.cohLineBytes;
    g.lineAddr.resize(g.nlines);
    for (unsigned i = 0; i < g.nlines; ++i)
        g.lineAddr[i] = sim::Addr{i} * stride;
    g.lockWord = g.lineAddr.back();

    // Conflict-freedom: at every level, no set receives more tracked
    // (sub)lines than it has ways. Then fills never evict organically,
    // LRU order cannot influence any transition, and dropping timestamps
    // from the abstract state is lossless.
    for (unsigned lvl = 0; lvl < g.nlev; ++lvl) {
        const sim::LevelConfig &lc = cfg_.levels[lvl];
        const std::size_t sets = lc.sizeBytes / (lc.lineBytes * lc.assoc);
        std::vector<unsigned> used(sets, 0);
        for (unsigned i = 0; i < g.nlines; ++i) {
            for (sim::Addr a = g.lineAddr[i];
                 a < g.lineAddr[i] + g.cohLineBytes; a += lc.lineBytes) {
                const std::size_t set = (a / lc.lineBytes) & (sets - 1);
                if (++used[set] > lc.assoc)
                    throw sim::SimError(
                        "verify: tracked lines collide in level " +
                        std::to_string(lvl) + " set " +
                        std::to_string(set) +
                        " of the model machine; reduce --verify-lines",
                        obs::Json::object());
            }
        }
    }
}

AbstractState
ProtocolModel::initial() const
{
    AbstractState s;
    s.lines.resize(g_.nlines);
    for (LineState &ls : s.lines) {
        ls.coh.assign(g_.nprocs, 0);
        ls.upper.assign(g_.nprocs, {});
    }
    s.cont.assign(g_.nprocs, Cont::Idle);
    s.wb.resize(g_.nprocs);
    return s;
}

sim::Addr
ProtocolModel::eventAddr(const Event &ev) const
{
    return g_.lineAddr[ev.line] + sim::Addr{ev.subline} * g_.l1LineBytes;
}

sim::Addr
ProtocolModel::wbLineOf(std::uint8_t enc) const
{
    const unsigned line = enc / g_.l1Sublines;
    const unsigned sub = enc % g_.l1Sublines;
    return g_.lineAddr[line] + sim::Addr{sub} * g_.l1LineBytes;
}

void
ProtocolModel::enumerate(const AbstractState &s,
                         std::vector<Event> &out) const
{
    out.clear();
    const auto lockLine = static_cast<std::uint8_t>(g_.nlines - 1);
    const unsigned nsub = opt_.allSublines ? g_.l1Sublines : 1;
    for (sim::ProcId p = 0; p < g_.nprocs; ++p) {
        switch (s.cont[p]) {
          case Cont::Blocked:
            continue; // spinning: the engine issues nothing for it
          case Cont::MidAcq:
          case Cont::Granted:
            // The acquire is this processor's current trace entry; its
            // only possible next step is the next acquire phase.
            out.push_back({EvKind::LockAcq, p, lockLine, 0});
            continue;
          case Cont::Holding:
            out.push_back({EvKind::LockRel, p, lockLine, 0});
            break;
          case Cont::Idle:
            out.push_back({EvKind::LockAcq, p, lockLine, 0});
            break;
        }
        for (std::uint8_t l = 0; l < g_.dataLines; ++l) {
            for (std::uint8_t b = 0; b < nsub; ++b) {
                out.push_back({EvKind::Load, p, l, b});
                out.push_back({EvKind::Store, p, l, b});
            }
        }
        for (std::uint8_t l = 0; l < g_.nlines; ++l)
            if (s.lines[l].coh[p] != 0)
                out.push_back({EvKind::Evict, p, l, 0});
        if (!s.wb[p].empty())
            out.push_back({EvKind::WbDrain, p, 0, 0});
    }
}

void
ProtocolModel::load(const AbstractState &s)
{
    m_.beginModelSteps();
    for (unsigned i = 0; i < g_.nlines; ++i) {
        const LineState &ls = s.lines[i];
        const sim::Addr la = g_.lineAddr[i];
        for (sim::ProcId p = 0; p < g_.nprocs; ++p) {
            if (ls.coh[p] != 0)
                m_.level(p, g_.nlev - 1).fill(la, ls.coh[p] == 2);
            for (unsigned u = 0; u + 1 < g_.nlev; ++u)
                for (unsigned b = 0; b < g_.sublinesAt[u]; ++b)
                    if (ls.upper[p][u] & (1u << b))
                        m_.level(p, u).fill(
                            la + sim::Addr{b} * cfg_.levels[u].lineBytes);
        }
        if (ls.dir != 0) {
            sim::Directory::Entry &e = m_.directoryForTest().entry(la);
            e.state = ls.dir == 1 ? sim::Directory::State::Shared
                                  : sim::Directory::State::Dirty;
            e.owner = ls.owner;
            e.sharers = ls.sharers;
        }
    }
    for (sim::ProcId p = 0; p < g_.nprocs; ++p)
        for (std::uint8_t enc : s.wb[p])
            m_.writeBufferForTest(p).push(0, kModelDrainNever,
                                          wbLineOf(enc));
    if (s.lockHeld) {
        const bool ok = m_.locksForTest().tryAcquire(g_.lockWord,
                                                     s.lockHolder);
        assert(ok);
        (void)ok;
        for (sim::ProcId w : s.waiters)
            m_.locksForTest().addWaiter(g_.lockWord, w);
    }
    for (sim::ProcId p = 0; p < g_.nprocs; ++p)
        m_.setProcWaitState(p, s.cont[p] == Cont::Blocked,
                            s.cont[p] == Cont::MidAcq);
}

void
ProtocolModel::stepEvent(const Event &ev)
{
    switch (ev.kind) {
      case EvKind::Load:
        m_.modelStep(ev.proc, sim::TraceEntry::read(
                                  eventAddr(ev), sim::DataClass::Data, 8));
        break;
      case EvKind::Store:
        m_.modelStep(ev.proc, sim::TraceEntry::write(
                                  eventAddr(ev), sim::DataClass::Data, 8));
        break;
      case EvKind::Evict:
        m_.modelEvict(ev.proc, g_.lineAddr[ev.line]);
        break;
      case EvKind::WbDrain:
        m_.writeBufferForTest(ev.proc).retireOldest();
        break;
      case EvKind::LockAcq:
        m_.modelStep(ev.proc,
                     sim::TraceEntry::lockAcq(g_.lockWord,
                                              sim::DataClass::LockSLock));
        break;
      case EvKind::LockRel:
        m_.modelStep(ev.proc,
                     sim::TraceEntry::lockRel(g_.lockWord,
                                              sim::DataClass::LockSLock));
        break;
    }
}

void
ProtocolModel::applyMutant(const AbstractState &pre, const Event &ev)
{
    const sim::Addr la = g_.lineAddr[ev.line];
    switch (opt_.mutant) {
      case Mutant::None:
        return;
      case Mutant::DropInvalAck:
        // The store invalidated every other copy; pretend one remote ack
        // was lost, so that cache silently keeps its (now stale) line.
        if (ev.kind != EvKind::Store)
            return;
        for (sim::ProcId q = 0; q < g_.nprocs; ++q) {
            if (q == ev.proc || pre.lines[ev.line].coh[q] == 0)
                continue;
            if (!m_.l2(q).contains(la)) {
                m_.l2(q).fill(la, pre.lines[ev.line].coh[q] == 2);
                return;
            }
        }
        return;
      case Mutant::SkipOwnerDirty:
        // The store's directory entry says Dirty/owner, but the owning
        // cache forgets to assert the dirty bit (the very bug the
        // parallel-engine barrier replay once had).
        if (ev.kind != EvKind::Store)
            return;
        if (m_.l2(ev.proc).contains(la))
            m_.l2(ev.proc).markClean(la);
        return;
      case Mutant::StaleSharerBit:
        // The eviction's directory update is lost: the sharer vector
        // keeps naming a cache that dropped its copy.
        if (ev.kind != EvKind::Evict ||
            pre.lines[ev.line].coh[ev.proc] == 0)
            return;
        {
            sim::Directory::Entry &e = m_.directoryForTest().entry(la);
            e.sharers |= bit(ev.proc);
            if (e.state == sim::Directory::State::Uncached)
                e.state = sim::Directory::State::Shared;
        }
        return;
      case Mutant::WbReorder:
        // Two pending stores swap their drain order (needs >= 2 pending
        // entries, so reachable once a second store lands).
        if (ev.kind == EvKind::Store)
            m_.writeBufferForTest(ev.proc).corruptReorderForTest();
        return;
    }
}

AbstractState
ProtocolModel::extract(const AbstractState &pre, const Event &ev) const
{
    const sim::Machine &m = m_;
    AbstractState s;
    s.lines.resize(g_.nlines);
    for (unsigned i = 0; i < g_.nlines; ++i) {
        LineState &ls = s.lines[i];
        const sim::Addr la = g_.lineAddr[i];
        ls.coh.resize(g_.nprocs);
        ls.upper.assign(g_.nprocs, {});
        for (sim::ProcId p = 0; p < g_.nprocs; ++p) {
            const sim::Cache &coh = m.level(p, g_.nlev - 1);
            ls.coh[p] = coh.contains(la) ? (coh.isDirty(la) ? 2 : 1) : 0;
            for (unsigned u = 0; u + 1 < g_.nlev; ++u)
                for (unsigned b = 0; b < g_.sublinesAt[u]; ++b)
                    if (m.level(p, u).contains(
                            la + sim::Addr{b} * cfg_.levels[u].lineBytes))
                        ls.upper[p][u] |=
                            static_cast<std::uint8_t>(1u << b);
        }
        if (const sim::Directory::Entry *e = m.directory().peek(la)) {
            switch (e->state) {
              case sim::Directory::State::Uncached:
                break;
              case sim::Directory::State::Shared:
                ls.dir = 1;
                ls.sharers = static_cast<std::uint32_t>(e->sharers);
                break;
              case sim::Directory::State::Dirty:
                ls.dir = 2;
                ls.owner = e->owner;
                ls.sharers = static_cast<std::uint32_t>(e->sharers);
                break;
            }
        }
    }

    s.wb.resize(g_.nprocs);
    for (sim::ProcId p = 0; p < g_.nprocs; ++p) {
        for (sim::Addr a : m.writeBuffer(p).pendingLines()) {
            const unsigned line = static_cast<unsigned>(
                a / (cfg_.pageBytes + g_.cohLineBytes));
            const unsigned sub = static_cast<unsigned>(
                (a - g_.lineAddr[line]) / g_.l1LineBytes);
            s.wb[p].push_back(
                static_cast<std::uint8_t>(line * g_.l1Sublines + sub));
        }
    }

    if (m.locks().isHeld(g_.lockWord)) {
        s.lockHeld = true;
        s.lockHolder = m.locks().holder(g_.lockWord);
    }
    for (const sim::LockTable::Info &info : m.locks().snapshot())
        if (info.word == g_.lockWord)
            s.waiters.assign(info.waiters.begin(), info.waiters.end());

    // Lock continuations: Blocked/MidAcq mirror the engine flags; the
    // Granted/Holding/Idle bookkeeping follows from which event ran.
    s.cont.resize(g_.nprocs);
    for (sim::ProcId p = 0; p < g_.nprocs; ++p) {
        if (m.procBlocked(p)) {
            s.cont[p] = Cont::Blocked;
        } else if (m.procAcqPending(p)) {
            s.cont[p] = Cont::MidAcq;
        } else if (p == ev.proc) {
            if (ev.kind == EvKind::LockAcq)
                s.cont[p] = Cont::Holding; // phase 2 completed
            else if (ev.kind == EvKind::LockRel)
                s.cont[p] = Cont::Idle;
            else
                s.cont[p] = pre.cont[p];
        } else if (pre.cont[p] == Cont::Blocked) {
            // Woken by this event's release: holds the lock via hand-off
            // but still has to re-execute its acquire.
            assert(s.lockHeld && s.lockHolder == p);
            s.cont[p] = Cont::Granted;
        } else {
            s.cont[p] = pre.cont[p];
        }
    }
    return s;
}

ProtocolModel::StepResult
ProtocolModel::apply(const AbstractState &s, const Event &ev)
{
    load(s);
    stepEvent(ev);
    applyMutant(s, ev);
    StepResult r;
    sim::InvariantChecker check;
    check.sweep(m_);
    r.violations = check.totalViolations();
    if (r.violations != 0)
        r.detail = check.toJson();
    r.next = extract(s, ev);
    return r;
}

std::vector<sim::TraceStream>
ProtocolModel::traces(const std::vector<Event> &events)
{
    load(initial());
    std::vector<sim::TraceStream> out(g_.nprocs);
    std::vector<bool> inAcq(g_.nprocs, false);
    sim::Cycles slot = kCexSlotCycles;
    for (const Event &ev : events) {
        const sim::ProcId p = ev.proc;
        if (!m_.procBlocked(p)) {
            const sim::Cycles now = m_.procClock(p);
            if (now < slot) {
                const auto pad = static_cast<std::uint32_t>(slot - now);
                m_.modelStep(p, sim::TraceEntry::busy(pad));
                out[p].record(sim::TraceEntry::busy(pad));
            }
        }
        switch (ev.kind) {
          case EvKind::Load:
            out[p].record(sim::TraceEntry::read(eventAddr(ev),
                                                sim::DataClass::Data, 8));
            break;
          case EvKind::Store:
            out[p].record(sim::TraceEntry::write(eventAddr(ev),
                                                 sim::DataClass::Data, 8));
            break;
          case EvKind::LockAcq:
            // One LockAcq entry covers the whole multi-phase episode;
            // the engine replays the later phases (and any post-wake
            // re-execution) against this same entry.
            if (!inAcq[p]) {
                out[p].record(sim::TraceEntry::lockAcq(
                    g_.lockWord, sim::DataClass::LockSLock));
                inAcq[p] = true;
            }
            break;
          case EvKind::LockRel:
            out[p].record(sim::TraceEntry::lockRel(
                g_.lockWord, sim::DataClass::LockSLock));
            break;
          case EvKind::Evict:
          case EvKind::WbDrain:
            break; // no trace-level expression; padding only
        }
        stepEvent(ev);
        if (inAcq[p] && !m_.procBlocked(p) && !m_.procAcqPending(p))
            inAcq[p] = false;
        slot += kCexSlotCycles;
    }
    return out;
}

} // namespace verify
} // namespace dss
